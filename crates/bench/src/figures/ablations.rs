//! Ablations of the design choices DESIGN.md calls out.
//!
//! - **Locking discipline** (§5.1): delta-sketch merging vs holding the
//!   node lock for the whole batch.
//! - **Sketch-level parallelism** (§6.4): group size 1 vs larger thread
//!   groups (the paper found 1 best).
//! - **Hashing inside CubeSketch**: xxHash (production) vs the 2-universal
//!   multiply-mod-Mersenne family (theory mode).

use crate::harness::{fmt_rate, kron_workload, rate, run_graphzeppelin, Scale, Table};
use graph_zeppelin::{GraphZeppelin, GzConfig, LockingStrategy};
use gz_hash::{Hasher64, PairwiseHash, Xxh64Hasher};
use gz_sketch::cube::CubeSketchFamily;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Run all ablations.
pub fn run(scale: Scale) {
    println!("== Ablations ==\n");
    locking(scale);
    group_size(scale);
    hashers(scale);
    baseline_arithmetic();
    columns_vs_failure();
}

/// Failure probability vs column count: the paper fixes `log(1/δ) = 7`
/// columns; this sweep shows why — per-query failure rates on dense vectors
/// drop geometrically with columns, and 7 makes failures rare enough that
/// Boruvka's retry rounds absorb them all (§6.3's "undetectable" claim).
fn columns_vs_failure() {
    use gz_sketch::cube::CubeSketchFamily;
    use gz_sketch::geometry::SketchGeometry;
    use gz_sketch::SampleResult;

    let n = 1u64 << 16;
    let trials = 400;
    let mut t = Table::new(&["columns", "query failure rate (dense vector)"]);
    for columns in [1u32, 2, 3, 5, 7] {
        let mut failures = 0;
        for seed in 0..trials {
            let family = CubeSketchFamily::<Xxh64Hasher>::new(
                SketchGeometry::with_columns(n, columns),
                seed,
            );
            let mut sketch = family.new_sketch();
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0);
            for _ in 0..n / 4 {
                sketch.update(rng.gen_range(0..n));
            }
            if matches!(sketch.query(), SampleResult::Fail) {
                failures += 1;
            }
        }
        t.row(vec![
            format!("{columns}"),
            format!("{:.1}% ({failures}/{trials})", 100.0 * failures as f64 / trials as f64),
        ]);
    }
    println!("-- CubeSketch columns vs per-query failure rate (n = 2^16, |support| ~ n/4) --");
    t.print();
    println!("paper fixes 7 columns; failures there are absorbed by Boruvka retries.\n");
}

/// How much faster is our Mersenne-fold baseline than the division-based
/// arithmetic the paper's baseline used? (Quantifies how conservative the
/// Figure 4 speedups are.)
fn baseline_arithmetic() {
    use gz_sketch::modular::{P89Division, P89};
    use gz_sketch::standard::StandardFamily;

    fn measure<F: gz_sketch::modular::FingerprintField>(n: u64) -> f64 {
        let family: std::sync::Arc<StandardFamily<F, Xxh64Hasher>> =
            StandardFamily::for_vector(n, 3);
        let mut sketch = family.new_sketch();
        let mut rng = SmallRng::seed_from_u64(2);
        let indices: Vec<u64> = (0..512).map(|_| rng.gen_range(0..n)).collect();
        let start = Instant::now();
        let mut total = 0usize;
        while start.elapsed().as_millis() < 250 && total < 100_000 {
            for &i in &indices {
                sketch.update(i, 1);
            }
            total += indices.len();
        }
        rate(total, start.elapsed())
    }

    let n = 10u64.pow(10); // the 128-bit regime, where the cliff lives
    let fold = measure::<P89>(n);
    let division = measure::<P89Division>(n);
    let mut t = Table::new(&["fingerprint arithmetic", "standard l0 update rate"]);
    t.row(vec!["Mersenne fold (ours)".into(), fmt_rate(fold)]);
    t.row(vec!["double-and-add division model (paper's)".into(), fmt_rate(division)]);
    println!("-- standard-l0 baseline arithmetic (vector length 10^10) --");
    t.print();
    println!(
        "our baseline is {:.0}x faster than the division model, so Figure 4's\n\
         measured speedups are a conservative lower bound on the paper's.\n",
        fold / division
    );
}

fn locking(scale: Scale) {
    let w = kron_workload(scale.reference_kron().min(10), 3);
    let mut t = Table::new(&["locking", "ingest rate"]);
    for (name, strategy) in [
        ("delta-sketch (paper)", LockingStrategy::DeltaSketch),
        ("direct", LockingStrategy::Direct),
    ] {
        let mut config = GzConfig::in_ram(w.num_nodes);
        config.locking = strategy;
        config.num_workers = super::fig13::available_workers();
        let mut gz = GraphZeppelin::new(config).unwrap();
        let d = run_graphzeppelin(&mut gz, &w.updates);
        t.row(vec![name.into(), fmt_rate(rate(w.updates.len(), d))]);
    }
    println!("-- locking discipline (kron{}) --", scale.reference_kron().min(10));
    t.print();
    println!();
}

fn group_size(scale: Scale) {
    let w = kron_workload(scale.reference_kron().min(10), 4);
    let mut t = Table::new(&["group threads", "ingest rate"]);
    for group in [1usize, 2, 4] {
        let mut config = GzConfig::in_ram(w.num_nodes);
        config.group_threads = group;
        config.num_workers = 2;
        let mut gz = GraphZeppelin::new(config).unwrap();
        let d = run_graphzeppelin(&mut gz, &w.updates);
        t.row(vec![format!("{group}"), fmt_rate(rate(w.updates.len(), d))]);
    }
    println!("-- sketch-level parallelism (2 workers) --");
    t.print();
    println!("paper: group size 1 was best on its hardware.\n");
}

fn hashers(_scale: Scale) {
    fn measure<H: Hasher64>(n: u64) -> f64 {
        let family = CubeSketchFamily::<H>::for_vector(n, 9);
        let mut sketch = family.new_sketch();
        let mut rng = SmallRng::seed_from_u64(1);
        let indices: Vec<u64> = (0..8192).map(|_| rng.gen_range(0..n)).collect();
        let start = Instant::now();
        let mut total = 0usize;
        while start.elapsed().as_millis() < 150 {
            for &i in &indices {
                sketch.update(i);
            }
            total += indices.len();
        }
        rate(total, start.elapsed())
    }
    let n = 10u64.pow(8);
    let mut t = Table::new(&["hash family", "CubeSketch update rate"]);
    t.row(vec!["xxHash64 (production)".into(), fmt_rate(measure::<Xxh64Hasher>(n))]);
    t.row(vec!["2-universal mod 2^61-1 (theory)".into(), fmt_rate(measure::<PairwiseHash>(n))]);
    println!("-- CubeSketch hashing (vector length 10^8) --");
    t.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_hash_mode_produces_correct_components() {
        // The theory-mode hasher must be answer-equivalent (different
        // randomness, same correctness).
        let family = CubeSketchFamily::<PairwiseHash>::for_vector(1000, 4);
        let mut s = family.new_sketch();
        s.update(123);
        s.update(999);
        s.update(123);
        assert_eq!(s.query(), gz_sketch::SampleResult::Index(999));
    }
}
