//! Figure 12: GraphZeppelin remains fast when its data structures live on
//! disk.
//!
//! (a/b) ingestion rate with file-backed sketches: gutter-tree buffering vs
//! leaf-only gutters, against the in-RAM configuration (the paper's "29%
//! penalty" headline) and against the baselines' in-RAM rates for reference.
//! (c) connected-components time after ingestion, per system.
//!
//! The paper forces Aspen/Terrace to swap with cgroups and watches them
//! collapse; our substitution measures, instead, the *random block accesses
//! per update* each baseline would incur out-of-core (see the `io` figure),
//! and keeps this figure to directly measured quantities.

use crate::harness::{
    fmt_rate, kron_workload, rate, run_baseline, run_graphzeppelin, scratch_dir, time, Scale, Table,
};
use graph_zeppelin::{BufferStrategy, GraphZeppelin, GutterCapacity, GzConfig, StoreBackend};
use gz_baselines::{AspenLike, DynamicGraphSystem, TerraceLike};

/// Build the on-disk GZ config used throughout this figure.
fn disk_config(num_nodes: u64, dir: std::path::PathBuf, gutter_tree: bool) -> GzConfig {
    let mut c = GzConfig::in_ram(num_nodes);
    c.store = StoreBackend::Disk {
        dir: dir.clone(),
        block_bytes: 1 << 16,
        // A cache far smaller than the node-group count: the store really
        // pages (the paper's 16 GB RAM limit analogue).
        cache_groups: (num_nodes / 8).max(4) as usize,
    };
    c.buffering = if gutter_tree {
        BufferStrategy::GutterTree {
            buffer_bytes: 1 << 18,
            fanout: 16,
            leaf_capacity: GutterCapacity::SketchFactor(2.0),
            dir,
        }
    } else {
        BufferStrategy::LeafOnly { capacity: GutterCapacity::SketchFactor(2.0) }
    };
    c
}

/// Run the figure.
pub fn run(scale: Scale) {
    println!("== Figure 12: ingestion and query with data structures on disk ==\n");
    let kron = scale.reference_kron();
    let w = kron_workload(kron, 11);
    let dir = scratch_dir("fig12");
    println!("workload: kron{kron} ({} nodes, {} updates)\n", w.num_nodes, w.updates.len());

    let mut t = Table::new(&["system", "placement", "ingest rate", "CC time"]);

    // GraphZeppelin in RAM (reference point for the disk penalty).
    let mut gz_ram = GraphZeppelin::new(GzConfig::in_ram(w.num_nodes)).unwrap();
    let d_ram = run_graphzeppelin(&mut gz_ram, &w.updates);
    let (cc_ram, q_ram) = time(|| gz_ram.connected_components().unwrap());
    let ram_rate = rate(w.updates.len(), d_ram);
    t.row(vec!["graphzeppelin".into(), "RAM".into(), fmt_rate(ram_rate), format!("{:.2?}", q_ram)]);

    // GraphZeppelin on disk, gutter tree.
    let mut gz_tree =
        GraphZeppelin::new(disk_config(w.num_nodes, dir.path().to_path_buf(), true)).unwrap();
    let d_tree = run_graphzeppelin(&mut gz_tree, &w.updates);
    let (cc_tree, q_tree) = time(|| gz_tree.connected_components().unwrap());
    let tree_rate = rate(w.updates.len(), d_tree);
    t.row(vec![
        "graphzeppelin".into(),
        "disk (gutter tree)".into(),
        fmt_rate(tree_rate),
        format!("{:.2?}", q_tree),
    ]);

    // GraphZeppelin on disk, leaf-only gutters.
    let mut gz_leaf =
        GraphZeppelin::new(disk_config(w.num_nodes, dir.path().to_path_buf(), false)).unwrap();
    let d_leaf = run_graphzeppelin(&mut gz_leaf, &w.updates);
    let (cc_leaf, q_leaf) = time(|| gz_leaf.connected_components().unwrap());
    t.row(vec![
        "graphzeppelin".into(),
        "disk (leaf-only)".into(),
        fmt_rate(rate(w.updates.len(), d_leaf)),
        format!("{:.2?}", q_leaf),
    ]);

    // Baselines (in RAM; see module docs for the out-of-core substitution).
    let mut aspen = AspenLike::new(w.num_nodes as usize);
    let d_aspen = run_baseline(&mut aspen, &w.updates, 100_000);
    let (cc_aspen, q_aspen) = time(|| aspen.connected_components());
    t.row(vec![
        "aspen-like".into(),
        "RAM (reference)".into(),
        fmt_rate(rate(w.updates.len(), d_aspen)),
        format!("{:.2?}", q_aspen),
    ]);

    let mut terrace = TerraceLike::new(w.num_nodes as usize);
    let d_terrace = run_baseline(&mut terrace, &w.updates, 100_000);
    let (cc_terrace, q_terrace) = time(|| terrace.connected_components());
    t.row(vec![
        "terrace-like".into(),
        "RAM (reference)".into(),
        fmt_rate(rate(w.updates.len(), d_terrace)),
        format!("{:.2?}", q_terrace),
    ]);

    t.print();
    println!(
        "\nGZ disk penalty (gutter tree vs RAM): {:.0}% — paper reports 29% on kron18.",
        (1.0 - tree_rate / ram_rate) * 100.0
    );
    // Answers must agree across placements and with the baselines.
    assert_eq!(cc_ram.labels(), cc_tree.labels());
    assert_eq!(cc_ram.labels(), cc_leaf.labels());
    assert_eq!(cc_aspen, cc_terrace);
    println!(
        "all systems agree on the final components: {} components.\n",
        cc_ram.num_components()
    );
    let _ = (cc_aspen, cc_tree, cc_leaf);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_and_ram_configs_agree_on_answers() {
        let w = kron_workload(7, 3);
        let dir = scratch_dir("fig12_test");
        let mut ram = GraphZeppelin::new(GzConfig::in_ram(w.num_nodes)).unwrap();
        let mut disk =
            GraphZeppelin::new(disk_config(w.num_nodes, dir.path().to_path_buf(), true)).unwrap();
        run_graphzeppelin(&mut ram, &w.updates);
        run_graphzeppelin(&mut disk, &w.updates);
        assert_eq!(
            ram.connected_components().unwrap().labels(),
            disk.connected_components().unwrap().labels()
        );
        drop(disk);
    }
}
