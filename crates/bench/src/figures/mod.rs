//! One module per table/figure of the paper's evaluation.
//!
//! Each module exposes `run(scale)` which prints the regenerated
//! table/series to stdout. The `repro` binary dispatches on figure ids; the
//! mapping to the paper is recorded in DESIGN.md §5 and the measured output
//! lives in EXPERIMENTS.md.

pub mod ablations;
pub mod fig01;
pub mod fig04;
pub mod fig05;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod io_model;
pub mod reliability;

use crate::harness::Scale;

/// All figure ids, in paper order.
pub const ALL_FIGURES: &[&str] = &[
    "fig1",
    "fig4",
    "fig5",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "reliability",
    "io",
    "ablations",
];

/// Run one figure by id. Returns false for unknown ids.
pub fn run_figure(id: &str, scale: Scale) -> bool {
    match id {
        "fig1" => fig01::run(scale),
        "fig4" => fig04::run(scale),
        "fig5" => fig05::run(scale),
        "fig10" => fig10::run(scale),
        "fig11" => fig11::run(scale),
        "fig12" => fig12::run(scale),
        "fig13" => fig13::run(scale),
        "fig14" => fig14::run(scale),
        "fig15" => fig15::run(scale),
        "fig16" => fig16::run(scale),
        "reliability" => reliability::run(scale),
        "io" => io_model::run(scale),
        "ablations" => ablations::run(scale),
        _ => return false,
    }
    true
}
