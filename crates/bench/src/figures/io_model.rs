//! Observation 1 vs Lemma 4: I/O complexity of stream ingestion.
//!
//! The paper's hybrid-model claim: applying updates directly costs Ω(1)
//! I/Os per update (Observation 1), while gutter-tree buffering achieves
//! `sort(N)` — asymptotically *sub-constant* I/Os per update (Lemma 4).
//! Because this reproduction's disk store counts every block access, the
//! claim is directly measurable. This is also where the baselines'
//! out-of-core collapse is quantified: an explicit adjacency structure
//! touches at least one random block per update once it exceeds RAM.

use crate::harness::{kron_workload, run_graphzeppelin, scratch_dir, Scale, Table};
use graph_zeppelin::{BufferStrategy, GraphZeppelin, GutterCapacity, GzConfig, StoreBackend};

fn disk_config(
    num_nodes: u64,
    dir: std::path::PathBuf,
    buffering: BufferStrategy,
    cache_groups: usize,
) -> GzConfig {
    let mut c = GzConfig::in_ram(num_nodes);
    c.store = StoreBackend::Disk { dir, block_bytes: 1 << 14, cache_groups };
    c.buffering = buffering;
    c
}

/// Run the I/O-accounting comparison.
pub fn run(scale: Scale) {
    println!("== I/O model: Observation 1 (unbuffered) vs Lemma 4 (gutter tree) ==\n");
    let kron = match scale {
        Scale::Small => 8,
        Scale::Medium => 9,
    };
    let w = kron_workload(kron, 77);
    let n = w.updates.len();
    let dir = scratch_dir("io_model");
    println!("workload: kron{kron} ({n} updates), tight sketch cache\n");

    let cache = (w.num_nodes / 16).max(2) as usize;
    let configs: Vec<(&str, BufferStrategy)> = vec![
        (
            "unbuffered (gutter of 1)",
            BufferStrategy::LeafOnly { capacity: GutterCapacity::Updates(1) },
        ),
        (
            "leaf-only gutters (f=2.0)",
            BufferStrategy::LeafOnly { capacity: GutterCapacity::SketchFactor(2.0) },
        ),
        (
            "gutter tree",
            BufferStrategy::GutterTree {
                buffer_bytes: 1 << 17,
                fanout: 16,
                leaf_capacity: GutterCapacity::SketchFactor(2.0),
                dir: dir.path().to_path_buf(),
            },
        ),
    ];

    let mut t = Table::new(&[
        "buffering",
        "store I/O ops",
        "store I/O per update",
        "gutter I/O ops",
        "total bytes",
    ]);
    for (name, buffering) in configs {
        let mut gz = GraphZeppelin::new(disk_config(
            w.num_nodes,
            dir.path().to_path_buf(),
            buffering,
            cache,
        ))
        .unwrap();
        run_graphzeppelin(&mut gz, &w.updates);
        let store = gz.store_io().expect("disk store");
        let gutter_ops = gz.gutter_io().map(|g| g.total_ops()).unwrap_or(0);
        let bytes = store.bytes_read()
            + store.bytes_written()
            + gz.gutter_io().map(|g| g.bytes_read() + g.bytes_written()).unwrap_or(0);
        t.row(vec![
            name.into(),
            format!("{}", store.total_ops()),
            format!("{:.3}", store.total_ops() as f64 / n as f64),
            format!("{gutter_ops}"),
            crate::harness::fmt_bytes(bytes),
        ]);
    }
    t.print();
    println!(
        "\npaper shape: unbuffered ingestion costs Ω(1) store I/Os per update;\n\
         buffered ingestion amortizes to ≪1 — this is Lemma 4's sort(N) bound.\n"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffered_store_io_is_sub_constant_per_update() {
        let w = kron_workload(7, 5);
        let dir = scratch_dir("io_model_test");
        let mut gz = GraphZeppelin::new(disk_config(
            w.num_nodes,
            dir.path().to_path_buf(),
            BufferStrategy::LeafOnly { capacity: GutterCapacity::SketchFactor(2.0) },
            4,
        ))
        .unwrap();
        run_graphzeppelin(&mut gz, &w.updates);
        let ops = gz.store_io().unwrap().total_ops() as f64;
        let per_update = ops / w.updates.len() as f64;
        assert!(per_update < 0.5, "buffered: {per_update:.3} I/Os per update");
        drop(gz);
    }
}
