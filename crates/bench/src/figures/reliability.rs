//! §6.3: GraphZeppelin is reliable.
//!
//! The paper runs 1000 correctness checks per dataset (kron17 plus the four
//! real-world graphs) against an adjacency-matrix mirror and observes zero
//! failures despite the algorithm's nonzero failure probability. This module
//! reruns that protocol: every trial uses fresh sketch randomness, replays a
//! stream into both GraphZeppelin and a bit-matrix, and compares partitions
//! at several checkpoints.

use crate::harness::{dataset_workload, Scale, Table};
use graph_zeppelin::{GraphZeppelin, GzConfig};
use gz_graph::connectivity::same_partition;
use gz_graph::AdjacencyMatrix;
use gz_stream::{Dataset, UpdateKind};

/// Outcome of one dataset's trial sweep.
#[derive(Debug)]
pub struct TrialReport {
    /// Dataset name.
    pub name: String,
    /// Trials executed.
    pub trials: usize,
    /// Checks executed (checkpoints × trials).
    pub checks: usize,
    /// Wrong answers (expected: 0).
    pub failures: usize,
    /// Per-query sketch failures survived via retry rounds.
    pub sketch_retries: usize,
}

/// Run `trials` correctness trials of one dataset.
pub fn trial_sweep(dataset: &Dataset, trials: usize, checkpoints: usize) -> TrialReport {
    let mut failures = 0usize;
    let mut checks = 0usize;
    let mut sketch_retries = 0usize;
    for trial in 0..trials as u64 {
        let w = dataset_workload(dataset, 1000 + trial);
        let mut config = GzConfig::in_ram(w.num_nodes);
        config.seed = 0xBEEF_0000 ^ trial; // fresh sketch randomness per trial
        config.num_workers = 2;
        let mut gz = GraphZeppelin::new(config).unwrap();
        let mut mirror = AdjacencyMatrix::new(w.num_nodes);

        let step = (w.updates.len() / checkpoints).max(1);
        for (i, upd) in w.updates.iter().enumerate() {
            gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
            mirror.toggle(upd.edge());
            if (i + 1) % step == 0 || i + 1 == w.updates.len() {
                checks += 1;
                match gz.connected_components() {
                    Ok(cc) => {
                        let truth = mirror.connected_components();
                        if !same_partition(cc.labels(), &truth) {
                            failures += 1;
                        }
                        sketch_retries += cc.query_stats().1;
                    }
                    Err(_) => failures += 1,
                }
            }
        }
    }
    TrialReport { name: dataset.name.clone(), trials, checks, failures, sketch_retries }
}

/// Run the reliability experiment.
pub fn run(scale: Scale) {
    println!("== §6.3 reliability: GraphZeppelin vs adjacency-matrix ground truth ==\n");
    let trials = scale.reliability_trials();
    let mut datasets = vec![Dataset::kron(match scale {
        Scale::Small => 7,
        Scale::Medium => 9,
    })];
    datasets.extend(gz_stream::catalog::tiny_standins());

    let mut t = Table::new(&["dataset", "trials", "checks", "failures", "sketch retries"]);
    let mut total_failures = 0;
    for d in &datasets {
        let report = trial_sweep(d, trials, 4);
        total_failures += report.failures;
        t.row(vec![
            report.name,
            format!("{}", report.trials),
            format!("{}", report.checks),
            format!("{}", report.failures),
            format!("{}", report.sketch_retries),
        ]);
    }
    t.print();
    println!("\ntotal failures: {total_failures} (paper: 0 in 5000 trials; the bound is 1/V^c).\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_never_fails() {
        let d = Dataset::kron(6);
        let report = trial_sweep(&d, 5, 3);
        assert_eq!(report.failures, 0, "observed sketch-connectivity failures");
        assert!(report.checks >= 15);
    }
}
