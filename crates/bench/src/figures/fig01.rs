//! Figure 1: published graphs have few nodes or are sparse.
//!
//! The original is a scatter of NetworkRepository datasets against the
//! "fits in 16 GB as an adjacency list" line. We reproduce the *computation*
//! behind the figure — the feasibility line and where our catalog's datasets
//! fall relative to it (see DESIGN.md §3 on this substitution).

use crate::harness::{fmt_bytes, Scale, Table};
use gz_graph::stats::{adjacency_list_bytes, fits_in_ram, max_avg_degree};

const BUDGET: u64 = 16 << 30; // 16 GiB, as in the paper

/// Print the feasibility line and catalog placements.
pub fn run(_scale: Scale) {
    println!("== Figure 1: adjacency-list feasibility under a 16 GiB budget ==\n");

    let mut line = Table::new(&["nodes", "max avg degree @16GiB", "max edges @16GiB"]);
    for exp in [10u32, 14, 17, 20, 23, 26, 30] {
        let v = 1u64 << exp;
        let deg = max_avg_degree(v, BUDGET);
        let max_edges = (v as f64 * deg / 2.0) as u64;
        line.row(vec![format!("2^{exp}"), format!("{deg:.1}"), format!("{max_edges:.2e}")]);
    }
    line.print();

    println!("\nCatalog datasets against the line (paper: dense kron graphs cross it):\n");
    let mut t = Table::new(&["dataset", "nodes", "edges", "adj-list size", "fits in 16GiB?"]);
    let mut datasets = gz_stream::catalog::paper_kron_datasets();
    datasets.extend(gz_stream::catalog::real_world_standins());
    for d in datasets {
        let bytes = adjacency_list_bytes(d.nominal_edges, 4);
        t.row(vec![
            d.name.clone(),
            format!("{}", d.num_vertices),
            format!("{:.2e}", d.nominal_edges as f64),
            fmt_bytes(bytes),
            if fits_in_ram(d.nominal_edges, BUDGET) { "yes".into() } else { "NO".into() },
        ]);
    }
    t.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kron18_crosses_the_line() {
        // The paper's point: its dense graphs do not fit as adjacency lists.
        let kron18 = gz_stream::Dataset::kron(18);
        assert!(!fits_in_ram(kron18.nominal_edges, BUDGET));
        // While the sparse real-world graphs easily do.
        for d in gz_stream::catalog::real_world_standins() {
            assert!(fits_in_ram(d.nominal_edges, BUDGET), "{}", d.name);
        }
    }

    #[test]
    fn runs_without_panicking() {
        run(Scale::Small);
    }
}
