//! Figure 16: query latency every 10% of the stream.
//!
//! (a) in memory: GraphZeppelin with tiny (100-update) leaf buffers vs the
//! baselines. Paper shape: the explicit systems answer faster on the sparse
//! early prefixes, but their BFS cost grows with density while GZ's
//! Boruvka-over-sketches cost is density-independent — GZ wins by ~70% of
//! the stream.
//!
//! (b) on disk: GZ's query time stays flat; Aspen's blows up once the graph
//! exceeds RAM (our substitution reports GZ-on-disk measured, baselines in
//! RAM for reference).

use crate::harness::{
    batch_for_baselines, fmt_rate, kron_workload, rate, scratch_dir, time, Scale, Table,
};
use graph_zeppelin::{BufferStrategy, GraphZeppelin, GutterCapacity, GzConfig, StoreBackend};
use gz_baselines::{AspenLike, DynamicGraphSystem, TerraceLike};
use gz_stream::UpdateKind;

/// Run the periodic-query experiment.
pub fn run(scale: Scale) {
    println!("== Figure 16: query latency every 10% of the stream ==\n");
    let kron = match scale {
        Scale::Small => 9,
        Scale::Medium => 11,
    };
    let w = kron_workload(kron, 33);
    println!("workload: kron{kron} ({} updates), queries at each decile\n", w.updates.len());

    // (a) in-memory: GZ with 100-update buffers (the paper's 400-byte
    // gutters), baselines stepped through the same prefixes.
    let mut config = GzConfig::in_ram(w.num_nodes);
    config.buffering = BufferStrategy::LeafOnly { capacity: GutterCapacity::Updates(100) };
    let mut gz = GraphZeppelin::new(config).unwrap();
    let mut aspen = AspenLike::new(w.num_nodes as usize);
    let mut terrace = TerraceLike::new(w.num_nodes as usize);

    let mut t = Table::new(&["% of stream", "gz query", "aspen query", "terrace query"]);
    let decile = w.updates.len() / 10;
    let mut gz_ingest_time = std::time::Duration::ZERO;
    for dec in 1..=10usize {
        let chunk = &w.updates[(dec - 1) * decile..(dec * decile).min(w.updates.len())];
        let (_, d) = time(|| {
            for upd in chunk {
                gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
            }
        });
        gz_ingest_time += d;
        for (is_delete, edges) in batch_for_baselines(chunk, 100_000) {
            if is_delete {
                aspen.batch_delete(&edges);
                terrace.batch_delete(&edges);
            } else {
                aspen.batch_insert(&edges);
                terrace.batch_insert(&edges);
            }
        }

        let (gz_cc, gz_q) = time(|| gz.connected_components().unwrap());
        let (aspen_cc, aspen_q) = time(|| aspen.connected_components());
        let (terrace_cc, terrace_q) = time(|| terrace.connected_components());
        assert_eq!(gz_cc.labels(), &aspen_cc[..], "decile {dec}: GZ vs aspen");
        assert_eq!(aspen_cc, terrace_cc, "decile {dec}: baselines disagree");

        t.row(vec![
            format!("{}%", dec * 10),
            format!("{gz_q:.2?}"),
            format!("{aspen_q:.2?}"),
            format!("{terrace_q:.2?}"),
        ]);
    }
    t.print();
    println!(
        "\n(a) paper shape: baselines fast early, growing with density; GZ flat.\n\
        GZ ingest rate with 100-update buffers: {}\n",
        fmt_rate(rate(w.updates.len(), gz_ingest_time))
    );

    // (b) on disk: GZ with file-backed sketches, 0.1× sketch buffers.
    let dir = scratch_dir("fig16");
    let mut config = GzConfig::in_ram(w.num_nodes);
    config.store = StoreBackend::Disk {
        dir: dir.path().to_path_buf(),
        block_bytes: 1 << 16,
        cache_groups: (w.num_nodes / 8).max(4) as usize,
    };
    config.buffering = BufferStrategy::LeafOnly { capacity: GutterCapacity::SketchFactor(0.1) };
    let mut gz_disk = GraphZeppelin::new(config).unwrap();
    let mut d = Table::new(&["% of stream", "gz-on-disk query"]);
    for dec in 1..=10usize {
        let chunk = &w.updates[(dec - 1) * decile..(dec * decile).min(w.updates.len())];
        for upd in chunk {
            gz_disk.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
        }
        let (_, q) = time(|| gz_disk.connected_components().unwrap());
        d.row(vec![format!("{}%", dec * 10), format!("{q:.2?}")]);
    }
    d.print();
    println!(
        "\n(b) paper shape: GZ's on-disk query time is flat in graph density\n\
         (24s at every decile on kron17); Aspen's final query was 5x slower.\n"
    );
    drop(gz_disk);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn midstream_queries_agree_with_baseline() {
        let w = kron_workload(7, 13);
        let mut config = GzConfig::in_ram(w.num_nodes);
        config.buffering = BufferStrategy::LeafOnly { capacity: GutterCapacity::Updates(50) };
        let mut gz = GraphZeppelin::new(config).unwrap();
        let mut aspen = AspenLike::new(w.num_nodes as usize);
        let half = w.updates.len() / 2;
        for (i, upd) in w.updates.iter().enumerate() {
            gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
            match upd.kind {
                UpdateKind::Insert => aspen.batch_insert(&[(upd.u, upd.v)]),
                UpdateKind::Delete => aspen.batch_delete(&[(upd.u, upd.v)]),
            }
            if i == half {
                let cc = gz.connected_components().unwrap();
                assert_eq!(cc.labels(), &aspen.connected_components()[..], "mid-stream");
            }
        }
        let cc = gz.connected_components().unwrap();
        assert_eq!(cc.labels(), &aspen.connected_components()[..], "end of stream");
    }
}
