//! Figure 15: gutter size vs ingestion speed.
//!
//! Sweeps the leaf-gutter capacity factor `f` (gutter bytes = f × node
//! sketch bytes) with sketches in RAM and on disk. Paper shape: unbuffered
//! (f→0) is catastrophically slow — 33× slower in RAM, three orders of
//! magnitude on SSD; rates saturate quickly in RAM (f ≈ 0.01 within 5% of
//! peak) but need larger f (≈ 0.5) when sketches page to disk.

use crate::harness::{fmt_rate, kron_workload, rate, run_graphzeppelin, scratch_dir, Scale, Table};
use graph_zeppelin::{BufferStrategy, GraphZeppelin, GutterCapacity, GzConfig, StoreBackend};

fn config_with_factor(
    num_nodes: u64,
    factor: Option<f64>,
    disk_dir: Option<std::path::PathBuf>,
) -> GzConfig {
    let mut c = GzConfig::in_ram(num_nodes);
    c.buffering = BufferStrategy::LeafOnly {
        capacity: match factor {
            Some(f) => GutterCapacity::SketchFactor(f),
            None => GutterCapacity::Updates(1), // unbuffered
        },
    };
    if let Some(dir) = disk_dir {
        c.store = StoreBackend::Disk {
            dir,
            block_bytes: 1 << 16,
            cache_groups: (num_nodes / 8).max(4) as usize,
        };
    }
    c
}

/// Run the gutter-size sweep.
pub fn run(scale: Scale) {
    println!("== Figure 15: gutter size factor f vs ingestion rate ==\n");
    // Disk runs at f≈0 are extremely slow by design; use a smaller stream.
    let kron = match scale {
        Scale::Small => 8,
        Scale::Medium => scale.reference_kron().min(10),
    };
    let w = kron_workload(kron, 21);
    let dir = scratch_dir("fig15");
    println!("workload: kron{kron} ({} updates)\n", w.updates.len());

    let factors: Vec<Option<f64>> = vec![
        None, // unbuffered
        Some(0.01),
        Some(0.05),
        Some(0.1),
        Some(0.5),
        Some(1.0),
    ];

    let mut t = Table::new(&["gutter factor f", "RAM ingest", "disk ingest"]);
    for f in factors {
        let mut gz_ram = GraphZeppelin::new(config_with_factor(w.num_nodes, f, None)).unwrap();
        let d_ram = run_graphzeppelin(&mut gz_ram, &w.updates);

        let mut gz_disk =
            GraphZeppelin::new(config_with_factor(w.num_nodes, f, Some(dir.path().to_path_buf())))
                .unwrap();
        let d_disk = run_graphzeppelin(&mut gz_disk, &w.updates);

        t.row(vec![
            match f {
                None => "unbuffered".into(),
                Some(f) => format!("{f}"),
            },
            fmt_rate(rate(w.updates.len(), d_ram)),
            fmt_rate(rate(w.updates.len(), d_disk)),
        ]);
    }
    t.print();
    println!(
        "\npaper shape: unbuffered is ~33x slower in RAM and ~3 orders of\n\
         magnitude slower on disk; RAM saturates by f=0.01, disk needs f=0.5.\n"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffering_beats_unbuffered_on_disk() {
        let w = kron_workload(6, 8);
        let dir = scratch_dir("fig15_test");
        let mut unbuffered = GraphZeppelin::new(config_with_factor(
            w.num_nodes,
            None,
            Some(dir.path().to_path_buf()),
        ))
        .unwrap();
        let d_un = run_graphzeppelin(&mut unbuffered, &w.updates);
        let io_un = unbuffered.store_io().unwrap().total_ops();

        let mut buffered = GraphZeppelin::new(config_with_factor(
            w.num_nodes,
            Some(0.5),
            Some(dir.path().to_path_buf()),
        ))
        .unwrap();
        let d_buf = run_graphzeppelin(&mut buffered, &w.updates);
        let io_buf = buffered.store_io().unwrap().total_ops();

        // The defining property: buffering slashes store I/O (Lemma 4 vs
        // Observation 1). Wall-clock also improves but is noisy in CI.
        assert!(io_buf * 2 < io_un, "buffered {io_buf} ops vs unbuffered {io_un} ops");
        let _ = (d_un, d_buf);
        drop(unbuffered);
        drop(buffered);
    }
}
