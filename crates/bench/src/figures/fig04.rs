//! Figure 4: CubeSketch is faster than standard ℓ0 sketching.
//!
//! Single-threaded update rates of both samplers across vector lengths
//! 10^3…10^12. The paper's shape: CubeSketch stays within one order of
//! magnitude across all lengths, the standard sampler decays with `log n`
//! (modular exponentiation) and falls off a cliff at `n = 10^10` where the
//! fingerprint field must widen to 128 bits.

use crate::harness::{fmt_rate, rate, time, Scale, Table};
use gz_hash::Xxh64Hasher;
use gz_sketch::cube::CubeSketchFamily;
use gz_sketch::standard::AnyStandardFamily;
use gz_sketch::L0Sampler;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Measure one sampler's update rate on random indices.
fn measure_updates<S: L0Sampler>(
    sampler: &mut S,
    vector_len: u64,
    min_time: Duration,
    max_updates: usize,
) -> f64 {
    let mut rng = SmallRng::seed_from_u64(0x000F_1604);
    // Pre-draw indices so RNG cost stays out of the measurement.
    let indices: Vec<u64> = (0..8192).map(|_| rng.gen_range(0..vector_len)).collect();
    let mut total = 0usize;
    let start = std::time::Instant::now();
    while start.elapsed() < min_time && total < max_updates {
        for &i in &indices {
            sampler.update_signed(i, 1);
        }
        total += indices.len();
    }
    rate(total, start.elapsed())
}

/// Print the Figure 4 table.
pub fn run(scale: Scale) {
    println!("== Figure 4: ingestion rates, standard l0 vs CubeSketch (updates/s) ==\n");
    let exponents: Vec<u32> = match scale {
        Scale::Small => vec![3, 4, 5, 6, 8, 10, 12],
        Scale::Medium => vec![3, 4, 5, 6, 7, 8, 9, 10, 11, 12],
    };
    let (min_time, cube_cap, std_cap) = match scale {
        Scale::Small => (Duration::from_millis(120), 2_000_000, 60_000),
        Scale::Medium => (Duration::from_millis(400), 8_000_000, 200_000),
    };

    let mut t = Table::new(&["vector length", "standard l0", "CubeSketch", "speedup", "field"]);
    for exp in exponents {
        let n = 10u64.pow(exp);
        let cube_family = CubeSketchFamily::<Xxh64Hasher>::for_vector(n, 7);
        let mut cube = cube_family.new_sketch();
        let cube_rate = measure_updates(&mut cube, n, min_time, cube_cap);

        let std_family = AnyStandardFamily::<Xxh64Hasher>::for_vector(n, 7);
        let wide = std_family.is_wide();
        let mut std_sketch = std_family.new_sketch();
        let std_rate = measure_updates(&mut std_sketch, n, min_time, std_cap);

        t.row(vec![
            format!("10^{exp}"),
            fmt_rate(std_rate),
            fmt_rate(cube_rate),
            format!("{:.0}x", cube_rate / std_rate),
            if wide { "128-bit".into() } else { "64-bit".into() },
        ]);
    }
    t.print();
    println!(
        "\npaper shape: speedup grows with n (33x at 10^3 to 2350x at 10^12),\n\
         with a standard-l0 cliff at 10^10 where 128-bit arithmetic kicks in.\n"
    );
    let _ = time(|| ()); // keep the import used under all cfgs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubesketch_beats_standard_at_every_length() {
        for exp in [3u32, 6, 10] {
            let n = 10u64.pow(exp);
            let cube_family = CubeSketchFamily::<Xxh64Hasher>::for_vector(n, 7);
            let mut cube = cube_family.new_sketch();
            let cube_rate = measure_updates(&mut cube, n, Duration::from_millis(30), 200_000);
            let std_family = AnyStandardFamily::<Xxh64Hasher>::for_vector(n, 7);
            let mut std_sketch = std_family.new_sketch();
            let std_rate = measure_updates(&mut std_sketch, n, Duration::from_millis(30), 20_000);
            assert!(
                cube_rate > 2.0 * std_rate,
                "10^{exp}: cube {cube_rate:.0} vs standard {std_rate:.0}"
            );
        }
    }

    #[test]
    fn wide_field_slower_than_narrow() {
        // The 10^10 cliff: the 128-bit path must be measurably slower.
        let narrow_family = AnyStandardFamily::<Xxh64Hasher>::for_vector(10u64.pow(9), 7);
        let wide_family = AnyStandardFamily::<Xxh64Hasher>::for_vector(10u64.pow(10), 7);
        assert!(!narrow_family.is_wide() && wide_family.is_wide());
        let mut narrow = narrow_family.new_sketch();
        let mut wide = wide_family.new_sketch();
        let rn = measure_updates(&mut narrow, 10u64.pow(9), Duration::from_millis(40), 20_000);
        let rw = measure_updates(&mut wide, 10u64.pow(10), Duration::from_millis(40), 20_000);
        assert!(rn > rw, "narrow {rn:.0} vs wide {rw:.0}");
    }
}
