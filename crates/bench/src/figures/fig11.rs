//! Figure 11: GraphZeppelin uses less space than Aspen or Terrace on large,
//! dense graph streams.
//!
//! Two parts, as in the paper: (a) measured memory per system per dataset;
//! (b) the crossover — GraphZeppelin's footprint grows with `V·log²V` while
//! the explicit systems grow with `E = Θ(V²)` on dense graphs, so beyond
//! some scale GraphZeppelin wins. At the paper's 64 GB budget the crossover
//! fell between kron17 and kron18; at reproduction scale we measure the
//! curves directly and extrapolate with each system's measured bytes/edge.

use crate::harness::{fmt_bytes, Scale, Table};
use graph_zeppelin::size_model::gz_sketch_bytes;
use gz_baselines::{AspenLike, DynamicGraphSystem, TerraceLike};

/// Per-dataset measured memory plus paper-scale projection.
pub fn run(scale: Scale) {
    println!("== Figure 11: memory footprint, Aspen-like vs Terrace-like vs GraphZeppelin ==\n");
    let mut t = Table::new(&[
        "dataset",
        "edges",
        "aspen-like",
        "terrace-like",
        "graphzeppelin",
        "GZ wins?",
    ]);

    let mut aspen_bpe = 5.0f64; // measured below, defaults conservative
    let mut terrace_bpe = 25.0f64;

    for s in scale.kron_scales() {
        let dataset = gz_stream::Dataset::kron(s);
        let edges = dataset.generate(7);
        let pairs: Vec<(u32, u32)> = edges.iter().map(|e| (e.u(), e.v())).collect();

        let mut aspen = AspenLike::new(dataset.num_vertices as usize);
        aspen.batch_insert(&pairs);
        let mut terrace = TerraceLike::new(dataset.num_vertices as usize);
        terrace.batch_insert(&pairs);

        let gz = gz_sketch_bytes(dataset.num_vertices);
        let (a, tr) = (aspen.memory_bytes() as u64, terrace.memory_bytes() as u64);
        aspen_bpe = a as f64 / edges.len() as f64;
        terrace_bpe = tr as f64 / edges.len() as f64;

        t.row(vec![
            dataset.name.clone(),
            format!("{:.2e}", edges.len() as f64),
            fmt_bytes(a),
            fmt_bytes(tr),
            fmt_bytes(gz),
            if gz < a && gz < tr { "yes".into() } else { "not yet".into() },
        ]);
    }
    t.print();

    println!(
        "\nprojection to paper scale (aspen {aspen_bpe:.1} B/edge, terrace \
         {terrace_bpe:.1} B/edge measured; GZ from the exact sketch model):\n"
    );
    let mut p = Table::new(&["dataset", "aspen-like", "terrace-like", "graphzeppelin", "GZ wins?"]);
    for s in [13u32, 15, 16, 17, 18] {
        let d = gz_stream::Dataset::kron(s);
        let a = (d.nominal_edges as f64 * aspen_bpe) as u64;
        let tr = (d.nominal_edges as f64 * terrace_bpe) as u64;
        let gz = gz_sketch_bytes(d.num_vertices);
        p.row(vec![
            d.name.clone(),
            fmt_bytes(a),
            fmt_bytes(tr),
            fmt_bytes(gz),
            if gz < a && gz < tr { "yes".into() } else { "not yet".into() },
        ]);
    }
    p.print();
    println!(
        "\npaper shape: GZ smaller than Terrace from kron15, smaller than Aspen\n\
         by kron17/kron18 (space budget 32-64 GiB crossover).\n"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gz_memory_independent_of_density() {
        // The headline property: GZ's footprint depends on V only.
        let v = 1u64 << 12;
        assert_eq!(gz_sketch_bytes(v), gz_sketch_bytes(v));
        // Explicit systems grow with E: a denser graph costs Aspen more.
        let sparse = gz_stream::gnp::gnm_edges(512, 2_000, 3);
        let dense = gz_stream::gnp::gnm_edges(512, 60_000, 3);
        let mut a1 = AspenLike::new(512);
        a1.batch_insert(&sparse.iter().map(|e| (e.u(), e.v())).collect::<Vec<_>>());
        let mut a2 = AspenLike::new(512);
        a2.batch_insert(&dense.iter().map(|e| (e.u(), e.v())).collect::<Vec<_>>());
        assert!(a2.memory_bytes() > 5 * a1.memory_bytes());
    }

    #[test]
    fn crossover_exists_at_paper_scale() {
        // With ~4-6 B/edge for Aspen and dense kron graphs, GZ must win by
        // kron18 and must NOT win at kron13 — the paper's crossover shape.
        let bpe = 4.0;
        let k13 = gz_stream::Dataset::kron(13);
        let k18 = gz_stream::Dataset::kron(18);
        assert!(gz_sketch_bytes(k13.num_vertices) as f64 > k13.nominal_edges as f64 * bpe);
        assert!((gz_sketch_bytes(k18.num_vertices) as f64) < k18.nominal_edges as f64 * bpe);
    }
}
