//! Figure 5: CubeSketch is significantly smaller than standard ℓ0 sketching.
//!
//! Sketch sizes across vector lengths 10^3…10^12, from the exact geometry
//! model (12-byte CubeSketch buckets vs three field words for the standard
//! sampler). The paper's shape: ~2× smaller in the 64-bit regime, ~4×
//! beyond `n = 10^10`.

use crate::harness::{fmt_bytes, Scale, Table};
use gz_sketch::geometry::SketchGeometry;

/// Print the Figure 5 table.
pub fn run(_scale: Scale) {
    println!("== Figure 5: sketch sizes, standard l0 vs CubeSketch ==\n");
    let mut t = Table::new(&["vector length", "standard l0", "CubeSketch", "size reduction"]);
    for exp in 3..=12u32 {
        let n = 10u64.pow(exp);
        let geom = SketchGeometry::for_vector(n);
        let std_bytes = geom.standard_sketch_bytes() as u64;
        let cube_bytes = geom.cube_sketch_bytes() as u64;
        t.row(vec![
            format!("10^{exp}"),
            fmt_bytes(std_bytes),
            fmt_bytes(cube_bytes),
            format!("{:.1}x", std_bytes as f64 / cube_bytes as f64),
        ]);
    }
    t.print();
    println!("\npaper shape: 1.9-2.1x reduction through 10^9, 4.1x from 10^10 onward.\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_factors_match_paper_shape() {
        // 2x in the 64-bit regime…
        for exp in 3..=9u32 {
            let geom = SketchGeometry::for_vector(10u64.pow(exp));
            let r = geom.standard_sketch_bytes() as f64 / geom.cube_sketch_bytes() as f64;
            assert!((1.8..=2.2).contains(&r), "10^{exp}: {r}");
        }
        // …4x beyond the 128-bit switch.
        for exp in 10..=12u32 {
            let geom = SketchGeometry::for_vector(10u64.pow(exp));
            let r = geom.standard_sketch_bytes() as f64 / geom.cube_sketch_bytes() as f64;
            assert!((3.8..=4.2).contains(&r), "10^{exp}: {r}");
        }
    }

    #[test]
    fn absolute_sizes_within_paper_ballpark() {
        // Paper reports CubeSketch 1.21 KiB at 10^3 up to 18.8 KiB at 10^12.
        // Our geometry uses the same 12 B buckets and 7 columns; rows are
        // log2(n) rather than log2(n²), so sizes land within ~2x of the
        // paper's (shape identical; EXPERIMENTS.md discusses the offset).
        let small = SketchGeometry::for_vector(1000).cube_sketch_bytes();
        let large = SketchGeometry::for_vector(10u64.pow(12)).cube_sketch_bytes();
        assert!((500..4000).contains(&small), "10^3 -> {small}B");
        assert!((2000..40_000).contains(&large), "10^12 -> {large}B");
        assert!(large > small);
    }

    #[test]
    fn runs() {
        run(Scale::Small);
    }
}
