//! Figure 14: GraphZeppelin updates sketches in parallel.
//!
//! Ingestion rate vs Graph Worker count (leaf-only gutters, everything in
//! RAM — the paper's §6.4 setup). Paper shape: near-linear scaling at low
//! thread counts, 26× at 46 threads, still-positive marginal rate at the
//! top end.

use crate::harness::{fmt_rate, kron_workload, rate, run_graphzeppelin, Scale, Table};
use graph_zeppelin::{GraphZeppelin, GzConfig};

/// Run the thread-scaling sweep.
pub fn run(scale: Scale) {
    println!("== Figure 14: ingestion rate vs Graph Workers ==\n");
    let kron = scale.reference_kron();
    let w = kron_workload(kron, 9);
    println!("workload: kron{kron} ({} updates)\n", w.updates.len());

    let max_workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut counts = vec![1usize, 2, 4];
    for c in [8usize, 16, 32] {
        if c <= max_workers {
            counts.push(c);
        }
    }

    let mut t = Table::new(&["workers", "ingest rate", "speedup vs 1"]);
    let mut base_rate = None;
    for workers in counts {
        let mut config = GzConfig::in_ram(w.num_nodes);
        config.num_workers = workers;
        let mut gz = GraphZeppelin::new(config).unwrap();
        let d = run_graphzeppelin(&mut gz, &w.updates);
        let r = rate(w.updates.len(), d);
        let base = *base_rate.get_or_insert(r);
        t.row(vec![format!("{workers}"), fmt_rate(r), format!("{:.2}x", r / base)]);
    }
    t.print();
    println!(
        "\npaper shape: monotone scaling; 26x at 46 threads on a 48-hyperthread\n\
         workstation (this host has {max_workers} hardware threads).\n"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_worker_runs_match_single_worker_answers() {
        let w = kron_workload(7, 4);
        let labels: Vec<Vec<u32>> = [1usize, 4]
            .iter()
            .map(|&workers| {
                let mut config = GzConfig::in_ram(w.num_nodes);
                config.num_workers = workers;
                let mut gz = GraphZeppelin::new(config).unwrap();
                run_graphzeppelin(&mut gz, &w.updates);
                gz.connected_components().unwrap().labels().to_vec()
            })
            .collect();
        assert_eq!(labels[0], labels[1], "parallelism must not change answers");
    }
}
