//! Figure 13: GraphZeppelin is faster than Aspen and Terrace even when all
//! data structures fit in RAM.
//!
//! In-RAM ingestion rates across the kron sweep. The paper's shape on dense
//! streams: GZ ≳ 2× Aspen and ≫ 10× Terrace, with GZ's advantage growing
//! with density (its per-update cost is O(log V) regardless of degree, while
//! the explicit systems' adjacency maintenance degrades).

use crate::harness::{
    fmt_rate, kron_workload, rate, run_baseline, run_graphzeppelin, Scale, Table,
};
use graph_zeppelin::{GraphZeppelin, GzConfig};
use gz_baselines::{AspenLike, TerraceLike};

/// Run the in-RAM ingestion comparison.
pub fn run(scale: Scale) {
    println!("== Figure 13: in-RAM ingestion rates (updates/s) ==\n");
    let mut t = Table::new(&["dataset", "updates", "aspen-like", "terrace-like", "graphzeppelin"]);
    let mut series: Vec<RatePoint> = Vec::new();
    for s in scale.kron_scales() {
        let w = kron_workload(s, 5);

        let mut aspen = AspenLike::new(w.num_nodes as usize);
        let d_aspen = run_baseline(&mut aspen, &w.updates, 100_000);

        let mut terrace = TerraceLike::new(w.num_nodes as usize);
        let d_terrace = run_baseline(&mut terrace, &w.updates, 100_000);

        let mut config = GzConfig::in_ram(w.num_nodes);
        config.num_workers = available_workers();
        let mut gz = GraphZeppelin::new(config).unwrap();
        let d_gz = run_graphzeppelin(&mut gz, &w.updates);

        let (ra, rt, rg) = (
            rate(w.updates.len(), d_aspen),
            rate(w.updates.len(), d_terrace),
            rate(w.updates.len(), d_gz),
        );
        series.push((s, ra, rt, rg));
        t.row(vec![
            w.name.clone(),
            format!("{:.2e}", w.updates.len() as f64),
            fmt_rate(ra),
            fmt_rate(rt),
            fmt_rate(rg),
        ]);
    }
    t.print();
    crossover_analysis(&series);
    println!(
        "\npaper shape: on kron18 GZ ingests ~3x faster than Aspen and >10x\n\
         faster than Terrace; the gap widens with scale/density.\n"
    );
}

/// Extrapolate the measured decay-vs-flat trend to locate the scale at
/// which each baseline's ingest rate falls below GraphZeppelin's (the
/// single-thread analogue of the paper's who-wins-at-scale claim).
/// One measured point: (kron scale, aspen rate, terrace rate, gz rate).
type RatePoint = (u32, f64, f64, f64);

fn crossover_analysis(series: &[RatePoint]) {
    if series.len() < 2 {
        return;
    }
    // Fit log2(rate) as a linear function of kron scale over the last half
    // of the sweep (the dense regime), per system.
    let tail = &series[series.len() / 2..];
    let slope = |get: &dyn Fn(&RatePoint) -> f64| -> (f64, f64) {
        let n = tail.len() as f64;
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
        for point in tail {
            let (x, y) = (point.0 as f64, get(point).log2());
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let m = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let b = (sy - m * sx) / n;
        (m, b)
    };
    let (ma, ba) = slope(&|p| p.1);
    let (mt, bt) = slope(&|p| p.2);
    let (mg, bg) = slope(&|p| p.3);
    let cross = |m1: f64, b1: f64| -> Option<f64> {
        // scale where baseline line meets GZ line
        ((b1 - bg) / (mg - m1)).is_finite().then(|| (b1 - bg) / (mg - m1))
    };
    println!("\nmeasured trend (log2 rate per kron scale): aspen {ma:+.2}, terrace {mt:+.2}, gz {mg:+.2}");
    if let Some(x) = cross(ma, ba) {
        if x > 0.0 && x < 40.0 {
            println!("extrapolated aspen/GZ crossover: ~kron{:.0}", x);
        }
    }
    if let Some(x) = cross(mt, bt) {
        if x > 0.0 && x < 40.0 {
            println!("extrapolated terrace/GZ crossover: ~kron{:.0}", x);
        }
    }
}

/// Worker count for throughput experiments: leave a couple of cores for the
/// producer and OS.
pub fn available_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).saturating_sub(2).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gz_baselines::DynamicGraphSystem;

    #[test]
    fn all_three_systems_complete_a_small_sweep() {
        let w = kron_workload(7, 2);
        let mut aspen = AspenLike::new(w.num_nodes as usize);
        run_baseline(&mut aspen, &w.updates, 10_000);
        let mut terrace = TerraceLike::new(w.num_nodes as usize);
        run_baseline(&mut terrace, &w.updates, 10_000);
        let mut gz = GraphZeppelin::new(GzConfig::in_ram(w.num_nodes)).unwrap();
        run_graphzeppelin(&mut gz, &w.updates);
        // Final edge counts agree between the two explicit systems.
        assert_eq!(aspen.num_edges(), terrace.num_edges());
        // And components agree across all three.
        let cc = gz.connected_components().unwrap();
        assert_eq!(cc.labels(), &aspen.connected_components()[..]);
    }
}
