//! `repro`: regenerate every table and figure of the GraphZeppelin paper.
//!
//! ```text
//! repro                         # all figures at small scale
//! repro --figure fig4           # one figure
//! repro --figure fig11 --scale medium
//! repro --list                  # figure ids
//! ```
//!
//! Output is plain text tables; EXPERIMENTS.md archives a captured run with
//! paper-vs-measured commentary.

use gz_bench::figures::{run_figure, ALL_FIGURES};
use gz_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figure: Option<String> = None;
    let mut scale = Scale::Small;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--figure" | "-f" => {
                i += 1;
                figure = Some(args.get(i).cloned().unwrap_or_else(|| usage("missing figure id")));
            }
            "--scale" | "-s" => {
                i += 1;
                let s = args.get(i).cloned().unwrap_or_else(|| usage("missing scale"));
                scale = Scale::parse(&s).unwrap_or_else(|| usage("scale must be small|medium"));
            }
            "--list" | "-l" => {
                for f in ALL_FIGURES {
                    println!("{f}");
                }
                return;
            }
            "--help" | "-h" => {
                usage("");
            }
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    let started = std::time::Instant::now();
    match figure {
        Some(id) => {
            if !run_figure(&id, scale) {
                usage(&format!("unknown figure {id}; try --list"));
            }
        }
        None => {
            println!("# GraphZeppelin reproduction — all figures at {scale:?} scale\n");
            for id in ALL_FIGURES {
                let fig_start = std::time::Instant::now();
                run_figure(id, scale);
                println!("[{id} done in {:.1?}]\n", fig_start.elapsed());
            }
        }
    }
    eprintln!("total wall time: {:.1?}", started.elapsed());
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [--figure <id>] [--scale small|medium] [--list]\n\
         figures: {}",
        ALL_FIGURES.join(", ")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
