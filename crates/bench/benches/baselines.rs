//! Baseline-system benchmarks: Aspen-like and Terrace-like batch updates and
//! CC queries (the comparator side of Figures 12, 13, 16).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gz_baselines::{AspenLike, DynamicGraphSystem, TerraceLike};
use gz_bench::harness::{batch_for_baselines, kron_workload};
use std::time::Duration;

fn bench_batch_ingest(c: &mut Criterion) {
    let w = kron_workload(8, 7);
    let batches = batch_for_baselines(&w.updates, 50_000);
    let mut group = c.benchmark_group("baseline_ingest");
    group.throughput(Throughput::Elements(w.updates.len() as u64));
    group.bench_with_input(BenchmarkId::from_parameter("aspen-like"), &batches, |b, batches| {
        b.iter(|| {
            let mut sys = AspenLike::new(w.num_nodes as usize);
            for (is_delete, edges) in batches {
                if *is_delete {
                    sys.batch_delete(edges);
                } else {
                    sys.batch_insert(edges);
                }
            }
            sys.num_edges()
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("terrace-like"), &batches, |b, batches| {
        b.iter(|| {
            let mut sys = TerraceLike::new(w.num_nodes as usize);
            for (is_delete, edges) in batches {
                if *is_delete {
                    sys.batch_delete(edges);
                } else {
                    sys.batch_insert(edges);
                }
            }
            sys.num_edges()
        })
    });
    group.finish();
}

fn bench_cc_queries(c: &mut Criterion) {
    let w = kron_workload(8, 8);
    let batches = batch_for_baselines(&w.updates, 50_000);
    let mut aspen = AspenLike::new(w.num_nodes as usize);
    let mut terrace = TerraceLike::new(w.num_nodes as usize);
    for (is_delete, edges) in &batches {
        if *is_delete {
            aspen.batch_delete(edges);
            terrace.batch_delete(edges);
        } else {
            aspen.batch_insert(edges);
            terrace.batch_insert(edges);
        }
    }
    let mut group = c.benchmark_group("baseline_cc");
    group.bench_function("aspen-like", |b| b.iter(|| aspen.connected_components()));
    group.bench_function("terrace-like", |b| b.iter(|| terrace.connected_components()));
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_batch_ingest, bench_cc_queries
}
criterion_main!(benches);
