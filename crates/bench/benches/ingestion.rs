//! End-to-end ingestion benchmarks: the full pipeline on small kron streams
//! (Figure 13's stopwatch at criterion discipline), plus the sketch-update
//! kernel throughput table on the RAM store — per-update singles vs
//! gutter-sized batches vs dup-heavy batches through the cancellation
//! pre-pass (updates/sec).
//!
//! Set `GZ_BENCH_SMOKE=1` to run at tiny scale (the CI smoke mode); the
//! kernel comparison asserts its ≥2× batched-over-singles claim in both
//! modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graph_zeppelin::config::LockingStrategy;
use graph_zeppelin::node_sketch::{encode_other, SketchParams};
use graph_zeppelin::store::ram::RamStore;
use graph_zeppelin::{BufferStrategy, GraphZeppelin, GutterCapacity, GzConfig};
use gz_bench::harness::{kron_workload, smoke};
use gz_stream::UpdateKind;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn ingest(gz: &mut GraphZeppelin, updates: &[gz_stream::EdgeUpdate]) {
    for upd in updates {
        gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
    }
    gz.flush();
}

fn bench_ingest_by_workers(c: &mut Criterion) {
    let w = kron_workload(8, 1);
    let mut group = c.benchmark_group("gz_ingest_workers");
    group.throughput(Throughput::Elements(w.updates.len() as u64));
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &w.updates, |b, updates| {
            b.iter(|| {
                let mut config = GzConfig::in_ram(w.num_nodes);
                config.num_workers = workers;
                let mut gz = GraphZeppelin::new(config).unwrap();
                ingest(&mut gz, updates);
                gz.batches_applied()
            })
        });
    }
    group.finish();
}

fn bench_ingest_by_buffering(c: &mut Criterion) {
    let w = kron_workload(8, 2);
    let mut group = c.benchmark_group("gz_ingest_buffering");
    group.throughput(Throughput::Elements(w.updates.len() as u64));
    let cases: Vec<(&str, GutterCapacity)> = vec![
        ("unbuffered", GutterCapacity::Updates(1)),
        ("f=0.1", GutterCapacity::SketchFactor(0.1)),
        ("f=0.5", GutterCapacity::SketchFactor(0.5)),
    ];
    for (name, capacity) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &w.updates, |b, updates| {
            b.iter(|| {
                let mut config = GzConfig::in_ram(w.num_nodes);
                config.buffering = BufferStrategy::LeafOnly { capacity };
                let mut gz = GraphZeppelin::new(config).unwrap();
                ingest(&mut gz, updates);
                gz.batches_applied()
            })
        });
    }
    group.finish();
}

/// The tentpole measurement: sketch-update kernel throughput on the RAM
/// store at gutter-sized batches. Reports one-shot updates/sec for
/// per-update singles vs one batched `apply_batch` call vs a dup-heavy
/// batched call (insert/delete pairs cancelling in the pre-pass), under the
/// default delta-sketch locking, and asserts the batched path is ≥2× the
/// singles path — the win the buffering system banks on.
fn bench_store_update_kernel(c: &mut Criterion) {
    let num_nodes: u64 = if smoke() { 1 << 9 } else { 1 << 12 };
    let rounds = graph_zeppelin::config::default_rounds(num_nodes);
    let params = Arc::new(SketchParams::new(num_nodes, rounds, 7, 11));
    // A gutter-sized batch: what a leaf gutter at the paper's default
    // factor 0.5 hands a Graph Worker in one flush.
    let batch_len = GutterCapacity::SketchFactor(0.5).resolve(params.node_sketch_bytes());
    let records: Vec<u32> = (0..batch_len)
        .map(|i| encode_other(1 + (i as u32 % (num_nodes as u32 - 1)), false))
        .collect();
    // Dup-heavy variant of the same length: half the slots are
    // insert/delete pairs for the same edge.
    let mut dup_records = Vec::with_capacity(records.len());
    for r in records[..records.len() / 4].iter() {
        dup_records.push(*r);
        dup_records.push(*r | (1 << 31)); // the matching delete
    }
    dup_records.extend_from_slice(&records[records.len() / 4..records.len() * 3 / 4]);

    let store = RamStore::new(Arc::clone(&params), LockingStrategy::DeltaSketch);
    let reps = if smoke() { 3 } else { 10 };

    let one_shot = |label: &str, f: &dyn Fn(&RamStore)| -> f64 {
        // Warm up once (fills the scratch pool), then time `reps` passes.
        f(&store);
        let start = Instant::now();
        for _ in 0..reps {
            f(&store);
        }
        let per_sec = (reps * batch_len) as f64 / start.elapsed().as_secs_f64();
        println!(
            "gz_store_kernel/{label}: {per_sec:.0} updates/sec \
             (batch {batch_len}, {rounds} rounds, V={num_nodes})"
        );
        per_sec
    };

    let singles = one_shot("singles", &|s| {
        for &r in &records {
            s.apply_batch(0, &[r]);
        }
    });
    let batched = one_shot("batch", &|s| s.apply_batch(0, &records));
    let batched_dup = one_shot("batch+dedup", &|s| s.apply_batch(0, &dup_records));
    println!(
        "gz_store_kernel: batch {:.1}x singles, batch+dedup {:.1}x singles",
        batched / singles,
        batched_dup / singles
    );
    assert!(
        batched >= 2.0 * singles,
        "batched kernel must be ≥2× per-update singles ({batched:.0} vs {singles:.0} updates/sec)"
    );

    let mut group = c.benchmark_group("gz_store_kernel");
    group.throughput(Throughput::Elements(batch_len as u64));
    group.bench_with_input(BenchmarkId::from_parameter("singles"), &records, |b, records| {
        b.iter(|| {
            for &r in records {
                store.apply_batch(0, &[r]);
            }
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("batch"), &records, |b, records| {
        b.iter(|| store.apply_batch(0, records))
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("batch+dedup"),
        &dup_records,
        |b, records| b.iter(|| store.apply_batch(0, records)),
    );
    group.finish();
}

/// The PR's tentpole measurement: ingest sparse streams (Erdős–Rényi `gnp`
/// and preferential attachment — the regimes where almost every vertex
/// stays far below the promotion threshold) through a hybrid store
/// (τ = 32) vs the always-dense baseline (τ = 0). Reports resident sketch
/// bytes and the representation census for both, asserts the ≥5× memory
/// reduction on `gnp` plus answer equality, and records ingest time per
/// dataset × representation as criterion cases.
fn bench_ingest_hybrid(c: &mut Criterion) {
    use gz_stream::{Dataset, GeneratorSpec};

    let (nodes, edges) = if smoke() { (1u64 << 8, 512u64) } else { (1u64 << 10, 2048u64) };
    let datasets = [
        Dataset {
            name: format!("gnp-{nodes}x{edges}"),
            num_vertices: nodes,
            nominal_edges: edges,
            spec: GeneratorSpec::ErdosRenyi { nodes, edges },
        },
        Dataset {
            name: format!("pa-{nodes}x{edges}"),
            num_vertices: nodes,
            nominal_edges: edges,
            spec: GeneratorSpec::Preferential { nodes, edges },
        },
    ];

    let mut group = c.benchmark_group("gz_ingest_hybrid");
    for (idx, dataset) in datasets.iter().enumerate() {
        let w = gz_bench::harness::dataset_workload(dataset, 9 + idx as u64);
        group.throughput(Throughput::Elements(w.updates.len() as u64));

        // One-shot memory + equivalence check per dataset.
        let run = |threshold: u32| -> (GraphZeppelin, usize) {
            let mut config = GzConfig::in_ram(w.num_nodes);
            config.sketch_threshold = threshold;
            let mut gz = GraphZeppelin::new(config).unwrap();
            ingest(&mut gz, &w.updates);
            let bytes = gz.sketch_bytes();
            (gz, bytes)
        };
        let (mut dense, dense_bytes) = run(0);
        let (mut hybrid, hybrid_bytes) = run(32);
        let rep = hybrid.rep_stats();
        println!(
            "gz_ingest_hybrid/{}: dense {} vs hybrid {} ({:.1}x; {} promoted, {} sparse)",
            w.name,
            gz_bench::harness::fmt_bytes(dense_bytes as u64),
            gz_bench::harness::fmt_bytes(hybrid_bytes as u64),
            dense_bytes as f64 / hybrid_bytes.max(1) as f64,
            rep.promoted,
            rep.sparse,
        );
        assert_eq!(
            dense.connected_components().unwrap().labels(),
            hybrid.connected_components().unwrap().labels(),
            "{}: hybrid answers diverged from dense",
            w.name
        );
        if idx == 0 {
            // The ISSUE's acceptance bar: ≥5× resident-memory reduction on
            // the gnp stream.
            assert!(
                hybrid_bytes * 5 <= dense_bytes,
                "{}: hybrid {hybrid_bytes}B must be ≤ dense {dense_bytes}B / 5",
                w.name
            );
        }

        for (rep_name, threshold) in [("dense", 0u32), ("hybrid", 32)] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{}-{rep_name}", w.name)),
                &w.updates,
                |b, updates| {
                    b.iter(|| {
                        let mut config = GzConfig::in_ram(w.num_nodes);
                        config.sketch_threshold = threshold;
                        let mut gz = GraphZeppelin::new(config).unwrap();
                        ingest(&mut gz, updates);
                        gz.sketch_bytes()
                    })
                },
            );
        }
    }
    group.finish();
}

/// Final target: persist every measurement above as the machine-readable
/// baseline (`BENCH_ingestion.json`).
fn emit_bench_json(_c: &mut Criterion) {
    match gz_bench::harness::write_bench_json("ingestion") {
        Ok(path) => println!("bench baseline written to {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_ingestion.json: {e}"),
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_store_update_kernel, bench_ingest_by_workers, bench_ingest_by_buffering,
        bench_ingest_hybrid, emit_bench_json
}
criterion_main!(benches);
