//! End-to-end ingestion benchmarks: the full pipeline on small kron streams
//! (Figure 13's stopwatch at criterion discipline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graph_zeppelin::{BufferStrategy, GraphZeppelin, GutterCapacity, GzConfig};
use gz_bench::harness::kron_workload;
use gz_stream::UpdateKind;
use std::time::Duration;

fn ingest(gz: &mut GraphZeppelin, updates: &[gz_stream::EdgeUpdate]) {
    for upd in updates {
        gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
    }
    gz.flush();
}

fn bench_ingest_by_workers(c: &mut Criterion) {
    let w = kron_workload(8, 1);
    let mut group = c.benchmark_group("gz_ingest_workers");
    group.throughput(Throughput::Elements(w.updates.len() as u64));
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &w.updates, |b, updates| {
            b.iter(|| {
                let mut config = GzConfig::in_ram(w.num_nodes);
                config.num_workers = workers;
                let mut gz = GraphZeppelin::new(config).unwrap();
                ingest(&mut gz, updates);
                gz.batches_applied()
            })
        });
    }
    group.finish();
}

fn bench_ingest_by_buffering(c: &mut Criterion) {
    let w = kron_workload(8, 2);
    let mut group = c.benchmark_group("gz_ingest_buffering");
    group.throughput(Throughput::Elements(w.updates.len() as u64));
    let cases: Vec<(&str, GutterCapacity)> = vec![
        ("unbuffered", GutterCapacity::Updates(1)),
        ("f=0.1", GutterCapacity::SketchFactor(0.1)),
        ("f=0.5", GutterCapacity::SketchFactor(0.5)),
    ];
    for (name, capacity) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &w.updates, |b, updates| {
            b.iter(|| {
                let mut config = GzConfig::in_ram(w.num_nodes);
                config.buffering = BufferStrategy::LeafOnly { capacity };
                let mut gz = GraphZeppelin::new(config).unwrap();
                ingest(&mut gz, updates);
                gz.batches_applied()
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ingest_by_workers, bench_ingest_by_buffering
}
criterion_main!(benches);
