//! Sharded-ingestion benchmarks: ingestion rate vs shard count on a
//! Kronecker stream, and batched routing vs per-update routing.
//!
//! The second group measures the claim the sharding refactor rests on
//! (after *Exploring the Landscape of Distributed Graph Sketching*): the
//! distributed win only materializes with real inter-shard batching.
//! `per-update` forces one-record batches through the router — the old
//! `Shard::ingest` hot path's message pattern — while `batched` uses the
//! paper's gutter sizing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graph_zeppelin::{GutterCapacity, ShardConfig, ShardedGraphZeppelin};
use gz_bench::harness::kron_workload;
use gz_stream::UpdateKind;
use std::time::Duration;

fn ingest_all(config: ShardConfig, updates: &[gz_stream::EdgeUpdate]) -> u64 {
    let mut gz = ShardedGraphZeppelin::in_process(config).unwrap();
    for upd in updates {
        gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete).unwrap();
    }
    gz.flush().unwrap();
    gz.batches_shipped()
}

fn bench_ingest_by_shard_count(c: &mut Criterion) {
    let w = kron_workload(8, 1);
    let mut group = c.benchmark_group("gz_shards_ingest");
    group.throughput(Throughput::Elements(w.updates.len() as u64));
    for shards in [1u32, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(shards), &w.updates, |b, updates| {
            b.iter(|| ingest_all(ShardConfig::in_ram(w.num_nodes, shards), updates))
        });
    }
    group.finish();
}

fn bench_batched_vs_per_update_routing(c: &mut Criterion) {
    let w = kron_workload(8, 2);
    let mut group = c.benchmark_group("gz_shards_batching");
    group.throughput(Throughput::Elements(w.updates.len() as u64));
    let cases: Vec<(&str, GutterCapacity)> = vec![
        ("per-update", GutterCapacity::Updates(1)),
        ("batched-f0.5", GutterCapacity::SketchFactor(0.5)),
    ];
    for (name, capacity) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &w.updates, |b, updates| {
            b.iter(|| {
                let mut config = ShardConfig::in_ram(w.num_nodes, 4);
                config.router_capacity = capacity;
                ingest_all(config, updates)
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ingest_by_shard_count, bench_batched_vs_per_update_routing
}
criterion_main!(benches);
