//! Query-path benchmarks: sketch-space Boruvka (Figure 12c / 16's stopwatch),
//! plus the disk-backed snapshot-vs-streaming comparison at a pinned cache
//! budget: bytes read off the store and peak resident sketch bytes per
//! query mode.
//!
//! Set `GZ_BENCH_SMOKE=1` to run at tiny scale (the CI smoke mode).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph_zeppelin::{GraphZeppelin, GzConfig, StoreBackend};
use gz_bench::harness::{kron_workload, smoke};
use gz_stream::UpdateKind;
use std::time::Duration;

fn bench_connected_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("gz_query");
    group.sample_size(10);
    let scales: &[u32] = if smoke() { &[5] } else { &[7, 9] };
    for &scale in scales {
        let w = kron_workload(scale, 3);
        let mut gz = GraphZeppelin::new(GzConfig::in_ram(w.num_nodes)).unwrap();
        for upd in &w.updates {
            gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
        }
        gz.flush();
        group.bench_with_input(BenchmarkId::from_parameter(format!("kron{scale}")), &(), |b, _| {
            b.iter(|| gz.connected_components().unwrap().num_components())
        });
    }
    group.finish();
}

fn bench_spanning_forest_empty_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("gz_query_density");
    let num_nodes = 512u64;
    // Empty graph: all components retire in round one.
    let mut empty = GraphZeppelin::new(GzConfig::in_ram(num_nodes)).unwrap();
    group.bench_function("empty", |b| {
        b.iter(|| empty.connected_components().unwrap().num_components())
    });
    // Dense graph: log V merge rounds.
    let w = kron_workload(if smoke() { 5 } else { 9 }, 4);
    let mut dense = GraphZeppelin::new(GzConfig::in_ram(w.num_nodes)).unwrap();
    for upd in &w.updates {
        dense.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
    }
    dense.flush();
    group.bench_function("dense", |b| {
        b.iter(|| dense.connected_components().unwrap().num_components())
    });
    group.finish();
}

/// The tentpole comparison: a disk-backed store at a pinned cache budget,
/// queried in snapshot mode (materialize `V` full sketches) versus
/// streaming mode (fold round slices with group prefetch). Reports wall
/// time through criterion plus, one-shot, the bytes read off the store and
/// the peak resident sketch bytes of each mode.
fn bench_disk_query_modes(c: &mut Criterion) {
    // Scale 5 is degenerate (streamify's default disconnects 32 nodes,
    // which is all of kron5): stay at ≥ 6 so the query runs merge rounds.
    let scale = if smoke() { 6 } else { 8 };
    let cache_groups = 4; // the pinned RAM budget `M`, in node groups
    let w = kron_workload(scale, 6);
    let dir = gz_testutil::TempDir::new("gz-bench-diskq");
    let mut config = GzConfig::in_ram(w.num_nodes);
    config.store =
        StoreBackend::Disk { dir: dir.path().to_path_buf(), block_bytes: 16 << 10, cache_groups };
    let mut gz = GraphZeppelin::new(config).unwrap();
    for upd in &w.updates {
        gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
    }
    gz.flush();

    // One-shot measured comparison of the I/O and memory profiles.
    let io = gz.store_io().unwrap();
    let before = io.bytes_read();
    let snap = gz.spanning_forest_snapshot().unwrap();
    let snap_read = io.bytes_read() - before;
    let before = io.bytes_read();
    let stream = gz.spanning_forest_streaming().unwrap();
    let stream_read = io.bytes_read() - before;
    assert_eq!(snap.labels, stream.labels, "query modes must agree bit-for-bit");
    assert!(
        stream_read < snap_read,
        "streaming must read fewer bytes ({stream_read} vs {snap_read})"
    );
    assert!(
        stream.peak_sketch_bytes < snap.peak_sketch_bytes,
        "streaming must keep fewer sketch bytes resident ({} vs {})",
        stream.peak_sketch_bytes,
        snap.peak_sketch_bytes
    );
    println!(
        "gz_query_disk/kron{scale} (cache {cache_groups} groups, {} store groups, \
         {} rounds used): snapshot read {snap_read} B / peak resident {} B; \
         streaming read {stream_read} B / peak resident {} B",
        gz.store().num_groups(),
        stream.rounds_used,
        snap.peak_sketch_bytes,
        stream.peak_sketch_bytes,
    );

    let mut group = c.benchmark_group("gz_query_disk");
    group.sample_size(10);
    group.bench_function("snapshot", |b| {
        b.iter(|| gz.spanning_forest_snapshot().unwrap().num_components())
    });
    group.bench_function("streaming", |b| {
        b.iter(|| gz.spanning_forest_streaming().unwrap().num_components())
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_connected_components, bench_spanning_forest_empty_vs_dense,
        bench_disk_query_modes
}
criterion_main!(benches);
