//! Query-path benchmarks: sketch-space Boruvka (Figure 12c / 16's stopwatch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph_zeppelin::{GraphZeppelin, GzConfig};
use gz_bench::harness::kron_workload;
use gz_stream::UpdateKind;
use std::time::Duration;

fn bench_connected_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("gz_query");
    group.sample_size(10);
    for scale in [7u32, 9] {
        let w = kron_workload(scale, 3);
        let mut gz = GraphZeppelin::new(GzConfig::in_ram(w.num_nodes)).unwrap();
        for upd in &w.updates {
            gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
        }
        gz.flush();
        group.bench_with_input(BenchmarkId::from_parameter(format!("kron{scale}")), &(), |b, _| {
            b.iter(|| gz.connected_components().unwrap().num_components())
        });
    }
    group.finish();
}

fn bench_spanning_forest_empty_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("gz_query_density");
    let num_nodes = 512u64;
    // Empty graph: all components retire in round one.
    let mut empty = GraphZeppelin::new(GzConfig::in_ram(num_nodes)).unwrap();
    group.bench_function("empty", |b| {
        b.iter(|| empty.connected_components().unwrap().num_components())
    });
    // Dense graph: log V merge rounds.
    let w = kron_workload(9, 4);
    let mut dense = GraphZeppelin::new(GzConfig::in_ram(w.num_nodes)).unwrap();
    for upd in &w.updates {
        dense.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
    }
    dense.flush();
    group.bench_function("dense", |b| {
        b.iter(|| dense.connected_components().unwrap().num_components())
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_connected_components, bench_spanning_forest_empty_vs_dense
}
criterion_main!(benches);
