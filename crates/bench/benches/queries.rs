//! Query-path benchmarks: sketch-space Boruvka (Figure 12c / 16's stopwatch),
//! the disk-backed snapshot-vs-streaming comparison at a pinned cache
//! budget (bytes read off the store and peak resident sketch bytes per
//! query mode), and the parallel-query thread-scaling sweep
//! (`gz_query_parallel`, DESIGN.md §10).
//!
//! Set `GZ_BENCH_SMOKE=1` to run at tiny scale (the CI smoke mode). The
//! measured results are also exported to `BENCH_queries.json` (best/mean ns
//! per case) as the machine-readable baseline future PRs diff against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph_zeppelin::{
    uring_available, GraphZeppelin, GzConfig, IoBackendKind, QueryMode, StoreBackend,
};
use gz_bench::harness::{kron_workload, smoke};
use gz_stream::UpdateKind;
use std::time::{Duration, Instant};

fn bench_connected_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("gz_query");
    group.sample_size(10);
    let scales: &[u32] = if smoke() { &[5] } else { &[7, 9] };
    for &scale in scales {
        let w = kron_workload(scale, 3);
        let mut gz = GraphZeppelin::new(GzConfig::in_ram(w.num_nodes)).unwrap();
        for upd in &w.updates {
            gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
        }
        gz.flush();
        group.bench_with_input(BenchmarkId::from_parameter(format!("kron{scale}")), &(), |b, _| {
            b.iter(|| gz.connected_components().unwrap().num_components())
        });
    }
    group.finish();
}

fn bench_spanning_forest_empty_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("gz_query_density");
    let num_nodes = 512u64;
    // Empty graph: all components retire in round one.
    let mut empty = GraphZeppelin::new(GzConfig::in_ram(num_nodes)).unwrap();
    group.bench_function("empty", |b| {
        b.iter(|| empty.connected_components().unwrap().num_components())
    });
    // Dense graph: log V merge rounds.
    let w = kron_workload(if smoke() { 5 } else { 9 }, 4);
    let mut dense = GraphZeppelin::new(GzConfig::in_ram(w.num_nodes)).unwrap();
    for upd in &w.updates {
        dense.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
    }
    dense.flush();
    group.bench_function("dense", |b| {
        b.iter(|| dense.connected_components().unwrap().num_components())
    });
    group.finish();
}

/// The tentpole comparison: a disk-backed store at a pinned cache budget,
/// queried in snapshot mode (materialize `V` full sketches) versus
/// streaming mode (fold round slices with group prefetch). Reports wall
/// time through criterion plus, one-shot, the bytes read off the store and
/// the peak resident sketch bytes of each mode.
fn bench_disk_query_modes(c: &mut Criterion) {
    // Scale 5 is degenerate (streamify's default disconnects 32 nodes,
    // which is all of kron5): stay at ≥ 6 so the query runs merge rounds.
    let scale = if smoke() { 6 } else { 8 };
    let cache_groups = 4; // the pinned RAM budget `M`, in node groups
    let w = kron_workload(scale, 6);
    let dir = gz_testutil::TempDir::new("gz-bench-diskq");
    let mut config = GzConfig::in_ram(w.num_nodes);
    config.store =
        StoreBackend::Disk { dir: dir.path().to_path_buf(), block_bytes: 16 << 10, cache_groups };
    let mut gz = GraphZeppelin::new(config).unwrap();
    for upd in &w.updates {
        gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
    }
    gz.flush();

    // One-shot measured comparison of the I/O and memory profiles.
    let io = gz.store_io().unwrap();
    let before = io.bytes_read();
    let snap = gz.spanning_forest_snapshot().unwrap();
    let snap_read = io.bytes_read() - before;
    let before = io.bytes_read();
    let stream = gz.spanning_forest_streaming().unwrap();
    let stream_read = io.bytes_read() - before;
    assert_eq!(snap.labels, stream.labels, "query modes must agree bit-for-bit");
    assert!(
        stream_read < snap_read,
        "streaming must read fewer bytes ({stream_read} vs {snap_read})"
    );
    assert!(
        stream.peak_sketch_bytes < snap.peak_sketch_bytes,
        "streaming must keep fewer sketch bytes resident ({} vs {})",
        stream.peak_sketch_bytes,
        snap.peak_sketch_bytes
    );
    println!(
        "gz_query_disk/kron{scale} (cache {cache_groups} groups, {} store groups, \
         {} rounds used): snapshot read {snap_read} B / peak resident {} B; \
         streaming read {stream_read} B / peak resident {} B",
        gz.store().num_groups(),
        stream.rounds_used,
        snap.peak_sketch_bytes,
        stream.peak_sketch_bytes,
    );

    let mut group = c.benchmark_group("gz_query_disk");
    group.sample_size(10);
    group.bench_function("snapshot", |b| {
        b.iter(|| gz.spanning_forest_snapshot().unwrap().num_components())
    });
    group.bench_function("streaming", |b| {
        b.iter(|| gz.spanning_forest_streaming().unwrap().num_components())
    });
    group.finish();
}

/// Build a flushed system over the kron workload at `scale`, streaming
/// query mode, with the given store.
fn loaded_system(scale: u32, seed: u64, store: StoreBackend) -> GraphZeppelin {
    let w = kron_workload(scale, seed);
    let mut config = GzConfig::in_ram(w.num_nodes);
    config.store = store;
    config.query_mode = QueryMode::Streaming;
    let mut gz = GraphZeppelin::new(config).unwrap();
    for upd in &w.updates {
        gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
    }
    gz.flush();
    gz
}

/// Best-of-`samples` wall time of one streaming query at `threads`.
fn best_query_time(gz: &mut GraphZeppelin, threads: usize, samples: usize) -> Duration {
    gz.set_query_threads(threads);
    let _ = gz.spanning_forest_streaming().unwrap(); // warm
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            let _ = criterion::black_box(gz.spanning_forest_streaming().unwrap());
            start.elapsed()
        })
        .min()
        .unwrap()
}

/// The tentpole scaling sweep (DESIGN.md §10): the streaming query at
/// 1/2/4/8 query threads on the RAM store and on a cache-constrained disk
/// store. In full mode (kron8, the issue's pinned scale) the bench asserts
/// the 4-thread RAM query is ≥1.5× the single-threaded one — the measured
/// table lives in EXPERIMENTS.md. Smoke mode runs the sweep at tiny scale
/// for CI coverage without asserting a ratio a loaded 2-core runner cannot
/// honor.
fn bench_parallel_query_scaling(c: &mut Criterion) {
    let scale = if smoke() { 6 } else { 8 };
    let thread_counts: &[usize] = &[1, 2, 4, 8];

    let mut ram = loaded_system(scale, 3, StoreBackend::Ram);
    let dir = gz_testutil::TempDir::new("gz-bench-parq");
    let disk = StoreBackend::Disk {
        dir: dir.path().to_path_buf(),
        block_bytes: 16 << 10,
        cache_groups: 4, // the pinned RAM budget, as in gz_query_disk
    };
    let mut disk = loaded_system(scale, 3, disk);

    let mut group = c.benchmark_group("gz_query_parallel");
    group.sample_size(10);
    for &threads in thread_counts {
        ram.set_query_threads(threads);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("ram/kron{scale}/t{threads}")),
            &(),
            |b, _| b.iter(|| ram.spanning_forest_streaming().unwrap().num_components()),
        );
    }
    for &threads in thread_counts {
        disk.set_query_threads(threads);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("disk/kron{scale}/t{threads}")),
            &(),
            |b, _| b.iter(|| disk.spanning_forest_streaming().unwrap().num_components()),
        );
    }
    group.finish();

    // One-shot measured speedup line (and, in full mode on a machine with
    // the cores to show it, the ≥1.5× assertion at 4 threads on RAM).
    let samples = if smoke() { 5 } else { 20 };
    let t1 = best_query_time(&mut ram, 1, samples);
    let t4 = best_query_time(&mut ram, 4, samples);
    let speedup = t1.as_secs_f64() / t4.as_secs_f64().max(1e-12);
    println!(
        "gz_query_parallel/ram/kron{scale}: 1 thread {:.3} ms, 4 threads {:.3} ms — {speedup:.2}x",
        t1.as_secs_f64() * 1e3,
        t4.as_secs_f64() * 1e3,
    );
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if !smoke() && cores >= 4 {
        assert!(
            speedup >= 1.5,
            "parallel streaming query must be ≥1.5x at 4 threads on RAM (got {speedup:.2}x)"
        );
    }
}

/// The I/O-backend comparison (DESIGN.md §13): the streaming disk query at
/// a pinned cache budget under the pread backend versus the io_uring
/// backend at queue depth 16 — the batched submissions should be no slower
/// (one ring enter covers a whole prefetch window where pread pays a
/// syscall per group). The uring lanes skip with a logged reason when the
/// probe fails; the no-slower assertion arms only in full mode on a
/// machine with the cores to drive concurrent readers.
fn bench_io_backends(c: &mut Criterion) {
    let scale = if smoke() { 6 } else { 8 };
    let cache_groups = 4; // the pinned RAM budget, as in gz_query_disk

    let make = |kind: IoBackendKind| -> (GraphZeppelin, gz_testutil::TempDir) {
        let dir = gz_testutil::TempDir::new("gz-bench-iobe");
        let w = kron_workload(scale, 6);
        let mut config = GzConfig::in_ram(w.num_nodes);
        config.store = StoreBackend::Disk {
            dir: dir.path().to_path_buf(),
            block_bytes: 16 << 10,
            cache_groups,
        };
        config.query_mode = QueryMode::Streaming;
        config.io.kind = kind;
        config.io.queue_depth = 16;
        let mut gz = GraphZeppelin::new(config).unwrap();
        for upd in &w.updates {
            gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
        }
        gz.flush();
        (gz, dir)
    };

    let (mut pread, _pread_dir) = make(IoBackendKind::Pread);
    let mut group = c.benchmark_group("gz_query_uring");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("pread/kron{scale}")),
        &(),
        |b, _| b.iter(|| pread.spanning_forest_streaming().unwrap().num_components()),
    );

    if !uring_available() {
        eprintln!("gz_query_uring: skipping uring lane (io_uring unavailable on this host)");
        group.finish();
        return;
    }
    let (mut uring, _uring_dir) = make(IoBackendKind::Uring);
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("uring/kron{scale}")),
        &(),
        |b, _| b.iter(|| uring.spanning_forest_streaming().unwrap().num_components()),
    );
    group.finish();

    // One-shot measured comparison: answers agree bit-for-bit, uring
    // batches its reads, and (where armed) it is no slower than pread.
    let a = pread.spanning_forest_streaming().unwrap();
    let b = uring.spanning_forest_streaming().unwrap();
    assert_eq!(a.labels, b.labels, "backends must agree bit-for-bit");
    let io = uring.store_io().unwrap();
    assert!(io.max_depth() > 1, "uring must batch reads (max depth {})", io.max_depth());

    let samples = if smoke() { 5 } else { 20 };
    let tp = best_query_time(&mut pread, 1, samples);
    let tu = best_query_time(&mut uring, 1, samples);
    let ratio = tp.as_secs_f64() / tu.as_secs_f64().max(1e-12);
    println!(
        "gz_query_uring/kron{scale} (cache {cache_groups} groups, depth 16): \
         pread {:.3} ms, uring {:.3} ms — {ratio:.2}x, uring batch depth max {} mean {:.2}",
        tp.as_secs_f64() * 1e3,
        tu.as_secs_f64() * 1e3,
        io.max_depth(),
        io.mean_depth(),
    );
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if !smoke() && cores >= 4 {
        // 0.95: no slower than pread, modulo bench noise on shared runners.
        assert!(ratio >= 0.95, "uring must be no slower than pread at depth 16 (got {ratio:.2}x)");
    }
}

/// The epoch-versioned concurrent query (DESIGN.md §11): fold a sealed
/// epoch while a writer thread keeps landing batches at a pinned rate, and
/// compare against folding the same epoch quiescently. The delta is the
/// price of copy-on-write captures plus cache pressure from the writer —
/// not lock contention, since epoch reads never block ingestion.
fn bench_concurrent_query(c: &mut Criterion) {
    use std::sync::atomic::{AtomicBool, Ordering};

    let scale = if smoke() { 6 } else { 8 };
    let mut gz = loaded_system(scale, 3, StoreBackend::Ram);
    let num_nodes = gz.params().num_nodes;
    let epoch = gz.begin_epoch().unwrap();
    let reference = gz.spanning_forest_streaming().unwrap();

    let mut group = c.benchmark_group("gz_query_concurrent");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("quiescent/kron{scale}")),
        &(),
        |b, _| b.iter(|| epoch.spanning_forest().unwrap().num_components()),
    );

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            // ~256 updates per millisecond: enough churn to keep the
            // copy-on-write path hot without starving the query thread.
            let mut i = 0u64;
            let mut batches = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..256 {
                    let u = (i.wrapping_mul(7) % num_nodes) as u32;
                    let v = (i.wrapping_mul(13).wrapping_add(1) % num_nodes) as u32;
                    if u != v {
                        gz.edge_update(u, v);
                    }
                    i += 1;
                }
                gz.flush();
                batches += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            batches
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("under-ingest/kron{scale}")),
            &(),
            |b, _| b.iter(|| epoch.spanning_forest().unwrap().num_components()),
        );
        stop.store(true, Ordering::Relaxed);
        let batches = writer.join().unwrap();
        println!(
            "gz_query_concurrent/kron{scale}: {batches} writer batches landed during the \
             measured queries; epoch pinned {} captured groups",
            epoch.captured_groups(),
        );
    });
    group.finish();

    // The epoch must still answer as of its seal, churn notwithstanding.
    let at_epoch = epoch.spanning_forest().unwrap();
    assert_eq!(at_epoch.labels, reference.labels, "epoch answer moved under concurrent ingest");
}

/// Final target: persist every measurement above as the machine-readable
/// baseline (`BENCH_queries.json`).
fn emit_bench_json(_c: &mut Criterion) {
    match gz_bench::harness::write_bench_json("queries") {
        Ok(path) => println!("bench baseline written to {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_queries.json: {e}"),
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_connected_components, bench_spanning_forest_empty_vs_dense,
        bench_disk_query_modes, bench_parallel_query_scaling, bench_io_backends,
        bench_concurrent_query, emit_bench_json
}
criterion_main!(benches);
