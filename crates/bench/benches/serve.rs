//! `gz serve` load benchmark (DESIGN.md §15): query latency under
//! concurrent ingest, measured through real sockets against an in-process
//! daemon.
//!
//! Writer clients stream update batches at the daemon continuously while
//! the measured client works:
//!
//! - `update_rtt_b64` — criterion-timed round trip for one 64-update
//!   batch (frame encode, socket hop, gutter ingest, ack) with the other
//!   writers running.
//! - `query_components_p50` / `_p99` — latency percentiles across many
//!   `Components` queries, each sealing a fresh epoch while ingest keeps
//!   moving (staleness 0, the worst case for a query). Percentiles are
//!   computed here and recorded via `record_custom`: tail latency under
//!   load is exactly what a mean-of-samples loop would hide.
//!
//! Results land in `BENCH_serve.json` with the other baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use graph_zeppelin::TransportTimeouts;
use gz_bench::harness::smoke;
use gz_cli::client::ServeClient;
use gz_cli::serve::{serve_start, ServeListen, ServeOptions};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BATCH: usize = 64;

fn client_timeouts() -> TransportTimeouts {
    let d = Some(Duration::from_secs(30));
    TransportTimeouts { connect: d, read: d, write: d }
}

/// Deterministic pseudo-random insert stream over `n` nodes.
fn edge_stream(n: u32, count: usize, salt: u64) -> Vec<(u32, u32, bool)> {
    let mut x = salt | 1;
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = ((x >> 33) % n as u64) as u32;
        let v = ((x >> 13) % n as u64) as u32;
        if u != v {
            out.push((u, v, false));
        }
    }
    out
}

fn percentile_ns(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn bench_serve_load(c: &mut Criterion) {
    let nodes: u64 = if smoke() { 512 } else { 4096 };
    let writers = if smoke() { 2 } else { 4 };
    let queries = if smoke() { 40 } else { 300 };

    let mut options = ServeOptions::new(ServeListen::Tcp("127.0.0.1:0".into()), nodes);
    options.timeout_ms = Some(30_000);
    options.max_clients = (writers + 4) as u32;
    let handle = serve_start(&options).expect("start daemon");
    let addr = handle.addr().to_string();

    // Background load: `writers` clients each streaming 64-update batches
    // as fast as their acks come back, for the whole benchmark.
    let stop = Arc::new(AtomicBool::new(false));
    let pushed = Arc::new(AtomicU64::new(0));
    let writer_threads: Vec<_> = (0..writers)
        .map(|i| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let pushed = Arc::clone(&pushed);
            std::thread::spawn(move || {
                let mut client =
                    ServeClient::connect_tcp(&addr, &client_timeouts()).expect("writer connect");
                let stream = edge_stream(nodes as u32, 100_000, 1 + i as u64);
                let mut at = 0;
                while !stop.load(Ordering::Relaxed) {
                    let end = (at + BATCH).min(stream.len());
                    client.send_updates(&stream[at..end]).expect("writer batch");
                    pushed.fetch_add((end - at) as u64, Ordering::Relaxed);
                    at = if end == stream.len() { 0 } else { end };
                }
                client.shutdown().expect("writer goodbye");
            })
        })
        .collect();

    // Measured batch round trip, with the writers running underneath.
    let mut rtt_client = ServeClient::connect_tcp(&addr, &client_timeouts()).expect("rtt connect");
    let batch = &edge_stream(nodes as u32, BATCH, 99)[..];
    c.bench_function("gz_serve_load/update_rtt_b64", |b| {
        b.iter(|| rtt_client.send_updates(batch).expect("rtt batch"))
    });

    // Query latency percentiles: every query seals a fresh epoch while
    // ingest keeps moving.
    let mut query_client =
        ServeClient::connect_tcp(&addr, &client_timeouts()).expect("query connect");
    let mut lat_ns: Vec<f64> = Vec::with_capacity(queries);
    for _ in 0..queries {
        let t = Instant::now();
        let labels = query_client.query_components().expect("query under load");
        lat_ns.push(t.elapsed().as_secs_f64() * 1e9);
        assert_eq!(labels.len(), nodes as usize);
    }
    lat_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    criterion::record_custom("gz_serve_load/query_components_p50", percentile_ns(&lat_ns, 0.50));
    criterion::record_custom("gz_serve_load/query_components_p99", percentile_ns(&lat_ns, 0.99));

    stop.store(true, Ordering::Relaxed);
    for t in writer_threads {
        t.join().expect("writer thread");
    }
    rtt_client.shutdown().expect("rtt goodbye");
    query_client.shutdown().expect("query goodbye");
    println!(
        "gz_serve_load: {} updates acked across {writers} writers during {queries} queries",
        handle.acked(),
    );
    assert!(pushed.load(Ordering::Relaxed) > 0, "writers never pushed a batch");
    handle.shutdown().expect("daemon shutdown");
}

/// Final target: persist every measurement above as the machine-readable
/// baseline (`BENCH_serve.json`).
fn emit_bench_json(_c: &mut Criterion) {
    match gz_bench::harness::write_bench_json("serve") {
        Ok(path) => println!("bench baseline written to {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_serve_load, emit_bench_json
}
criterion_main!(benches);
