//! Criterion micro-benchmarks for the substrate crates: hashing, DSU,
//! edge codec, varint compression, work queue, leaf gutters.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gz_baselines::varint::{compress_sorted, decompress_sorted};
use gz_dsu::Dsu;
use gz_graph::{edge_index, index_to_edge, Edge};
use gz_gutters::{Batch, BufferingSystem, LeafGutters, WorkQueue};
use gz_hash::xxh64::xxh64_u64;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("xxh64_u64");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("1024 keys", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in 0..1024u64 {
                acc ^= xxh64_u64(k, 42);
            }
            acc
        })
    });
    group.finish();
}

fn bench_dsu(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(5);
    let n = 1 << 16;
    let unions: Vec<(u32, u32)> =
        (0..n).map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32))).collect();
    let mut group = c.benchmark_group("dsu");
    group.throughput(Throughput::Elements(unions.len() as u64));
    group.bench_function("union_find_random", |b| {
        b.iter(|| {
            let mut dsu = Dsu::new(n);
            for &(a, x) in &unions {
                dsu.union(a, x);
            }
            dsu.component_count()
        })
    });
    group.finish();
}

fn bench_edge_codec(c: &mut Criterion) {
    let v = 1u64 << 20;
    let mut rng = SmallRng::seed_from_u64(6);
    let edges: Vec<Edge> = (0..1024)
        .map(|_| {
            let a = rng.gen_range(0..v as u32);
            let b = rng.gen_range(0..v as u32);
            if a == b {
                Edge::new(a, a + 1)
            } else {
                Edge::new(a, b)
            }
        })
        .collect();
    let mut group = c.benchmark_group("edge_codec");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.bench_function("encode_decode_1024", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &e in &edges {
                let idx = edge_index(e, v);
                acc ^= index_to_edge(idx, v).u() as u64;
            }
            acc
        })
    });
    group.finish();
}

fn bench_varint(c: &mut Criterion) {
    let values: Vec<u32> = (0..4096u32).map(|i| i * 3).collect();
    let mut compressed = Vec::new();
    compress_sorted(&values, &mut compressed);
    let mut group = c.benchmark_group("varint");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("compress_4096", |b| {
        let mut out = Vec::new();
        b.iter(|| compress_sorted(&values, &mut out))
    });
    group.bench_function("decompress_4096", |b| {
        let mut out = Vec::new();
        b.iter(|| decompress_sorted(&compressed, values.len(), &mut out))
    });
    group.finish();
}

fn bench_work_queue(c: &mut Criterion) {
    c.bench_function("work_queue_push_pop_256", |b| {
        let q = Arc::new(WorkQueue::with_capacity(512));
        b.iter(|| {
            for i in 0..256u32 {
                q.push(Batch { node: i, others: vec![i] });
            }
            for _ in 0..256 {
                let batch = q.pop().unwrap();
                q.task_done();
                std::hint::black_box(batch);
            }
        })
    });
}

fn bench_leaf_gutters(c: &mut Criterion) {
    let mut group = c.benchmark_group("leaf_gutters");
    group.throughput(Throughput::Elements(8192));
    group.bench_function("insert_8192", |b| {
        b.iter(|| {
            let queue = Arc::new(WorkQueue::with_capacity(1 << 14));
            let mut gutters = LeafGutters::new(1024, 64, Arc::clone(&queue));
            for i in 0..8192u32 {
                gutters.insert(i % 1024, i);
            }
            while queue.try_pop().is_some() {}
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_hash, bench_dsu, bench_edge_codec, bench_varint, bench_work_queue, bench_leaf_gutters
}
criterion_main!(benches);
