//! Criterion micro-benchmarks for the sketch layer (paper Figure 4's
//! stopwatch, statistically disciplined).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gz_bench::harness::smoke;
use gz_hash::Xxh64Hasher;
use gz_sketch::cube::CubeSketchFamily;
use gz_sketch::standard::AnyStandardFamily;
use gz_sketch::L0Sampler;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn indices(n: u64, count: usize) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(99);
    (0..count).map(|_| rng.gen_range(0..n)).collect()
}

fn bench_cube_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("cubesketch_update");
    for exp in [4u32, 6, 9, 12] {
        let n = 10u64.pow(exp);
        let family = CubeSketchFamily::<Xxh64Hasher>::for_vector(n, 1);
        let idx = indices(n, 1024);
        group.throughput(Throughput::Elements(idx.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n=10^{exp}")),
            &idx,
            |b, idx| {
                let mut sketch = family.new_sketch();
                b.iter(|| sketch.update_batch(idx));
            },
        );
    }
    group.finish();
}

/// The batch-kernel throughput comparison at the raw sketch level
/// (updates/sec): per-update singles vs the column-major kernel vs the
/// kernel behind the self-cancellation pre-pass on a dup-heavy batch (the
/// gutter regime: insert/delete pairs for the same edge cancel before any
/// hashing). Store-level numbers live in the ingestion bench.
fn bench_cube_batch_kernel(c: &mut Criterion) {
    let n = 10u64.pow(if smoke() { 6 } else { 9 });
    let family = CubeSketchFamily::<Xxh64Hasher>::for_vector(n, 7);
    let batch = indices(n, if smoke() { 256 } else { 1024 });
    // Dup-heavy variant of the same length: half the slots are
    // insert/delete pairs, which the pre-pass cancels for free.
    let mut dup_batch = Vec::with_capacity(batch.len());
    for pair in batch[..batch.len() / 4].iter() {
        dup_batch.push(*pair);
        dup_batch.push(*pair);
    }
    dup_batch.extend_from_slice(&batch[batch.len() / 4..batch.len() * 3 / 4]);

    let mut group = c.benchmark_group("cubesketch_batch_kernel");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_with_input(BenchmarkId::from_parameter("singles"), &batch, |b, batch| {
        let mut sketch = family.new_sketch();
        b.iter(|| {
            for &i in batch {
                sketch.update(i);
            }
        });
    });
    group.bench_with_input(BenchmarkId::from_parameter("batch"), &batch, |b, batch| {
        let mut sketch = family.new_sketch();
        b.iter(|| sketch.update_batch_prepared(batch));
    });
    group.bench_with_input(BenchmarkId::from_parameter("batch+dedup"), &dup_batch, |b, batch| {
        let mut sketch = family.new_sketch();
        b.iter(|| sketch.update_batch(batch));
    });
    group.finish();
}

fn bench_standard_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("standard_l0_update");
    group.sample_size(10);
    for exp in [4u32, 6, 9, 10, 12] {
        let n = 10u64.pow(exp);
        let family = AnyStandardFamily::<Xxh64Hasher>::for_vector(n, 1);
        let idx = indices(n, 256);
        group.throughput(Throughput::Elements(idx.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n=10^{exp}")),
            &idx,
            |b, idx| {
                let mut sketch = family.new_sketch();
                b.iter(|| {
                    for &i in idx {
                        sketch.update_signed(i, 1);
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_cube_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("cubesketch_query");
    let n = 10u64.pow(8);
    let family = CubeSketchFamily::<Xxh64Hasher>::for_vector(n, 2);
    for support in [1usize, 100, 10_000] {
        let mut sketch = family.new_sketch();
        for &i in indices(n, support).iter() {
            sketch.update(i);
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("support={support}")),
            &sketch,
            |b, s| b.iter(|| s.query()),
        );
    }
    group.finish();
}

fn bench_cube_merge(c: &mut Criterion) {
    let n = 10u64.pow(9);
    let family = CubeSketchFamily::<Xxh64Hasher>::for_vector(n, 3);
    let mut a = family.new_sketch();
    let mut b2 = family.new_sketch();
    for &i in indices(n, 500).iter() {
        a.update(i);
        b2.update(i / 2 + 1);
    }
    c.bench_function("cubesketch_merge", |bch| {
        bch.iter(|| {
            let mut x = a.clone();
            x.merge(&b2);
            x
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cube_updates, bench_cube_batch_kernel, bench_standard_updates,
        bench_cube_query, bench_cube_merge
}
criterion_main!(benches);
