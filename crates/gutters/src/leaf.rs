//! Leaf-only gutters (paper §5.1).
//!
//! One in-RAM buffer ("gutter") per graph node, used when memory allows
//! (`M > V·B`): `buffer_insert((u, v))` appends `v` to `u`'s gutter, and a
//! full gutter is emitted to the work queue as one batch. The gutter
//! capacity is a configurable fraction `f` of the node-sketch size — the
//! knob swept by the paper's Figure 15.

use crate::work_queue::{Batch, WorkQueue};
use crate::BufferingSystem;
use std::sync::Arc;

/// Per-node in-RAM gutters.
pub struct LeafGutters {
    gutters: Vec<Vec<u32>>,
    capacity: usize,
    queue: Arc<WorkQueue>,
    buffered: usize,
    emitted_batches: u64,
}

impl LeafGutters {
    /// Create gutters for `num_nodes` nodes, each holding up to
    /// `capacity_updates` records before flushing to `queue`.
    pub fn new(num_nodes: usize, capacity_updates: usize, queue: Arc<WorkQueue>) -> Self {
        let capacity = capacity_updates.max(1);
        LeafGutters {
            gutters: vec![Vec::new(); num_nodes],
            capacity,
            queue,
            buffered: 0,
            emitted_batches: 0,
        }
    }

    /// The paper's default sizing: each gutter holds `f ×` the node-sketch
    /// size worth of updates (`sketch_bytes × f / 4` four-byte records);
    /// the default `f` is 1/2 (§5.1 "each leaf gutter is 1/2 the size of a
    /// node sketch").
    pub fn sized_to_sketch(
        num_nodes: usize,
        sketch_bytes: usize,
        factor: f64,
        queue: Arc<WorkQueue>,
    ) -> Self {
        let capacity = ((sketch_bytes as f64 * factor) / 4.0).ceil() as usize;
        Self::new(num_nodes, capacity, queue)
    }

    /// Per-gutter capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of batches emitted so far.
    pub fn emitted_batches(&self) -> u64 {
        self.emitted_batches
    }

    /// Number of nodes this gutter set covers.
    pub fn num_nodes(&self) -> usize {
        self.gutters.len()
    }

    /// Emit one node's gutter (if nonempty) regardless of fill level — the
    /// incremental form of [`BufferingSystem::force_flush`]. A single-thread
    /// consumer (the shard router) interleaves `flush_node` with queue
    /// drains, so the staging queue never has to hold more than one node's
    /// batch at a time.
    pub fn flush_node(&mut self, node: u32) {
        self.emit(node);
    }

    fn emit(&mut self, node: u32) {
        let gutter = &mut self.gutters[node as usize];
        if gutter.is_empty() {
            return;
        }
        let others = std::mem::take(gutter);
        self.buffered -= others.len();
        self.emitted_batches += 1;
        self.queue.push(Batch { node, others });
    }
}

impl BufferingSystem for LeafGutters {
    fn insert(&mut self, dst: u32, other: u32) {
        let gutter = &mut self.gutters[dst as usize];
        if gutter.capacity() == 0 {
            gutter.reserve_exact(self.capacity);
        }
        gutter.push(other);
        self.buffered += 1;
        if gutter.len() >= self.capacity {
            self.emit(dst);
        }
    }

    fn force_flush(&mut self) {
        for node in 0..self.gutters.len() as u32 {
            self.emit(node);
        }
    }

    fn buffered_len(&self) -> usize {
        self.buffered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(nodes: usize, cap: usize) -> (LeafGutters, Arc<WorkQueue>) {
        let queue = Arc::new(WorkQueue::with_capacity(1024));
        (LeafGutters::new(nodes, cap, Arc::clone(&queue)), queue)
    }

    #[test]
    fn emits_exactly_at_capacity() {
        let (mut g, q) = setup(4, 3);
        g.insert(1, 10);
        g.insert(1, 11);
        assert!(q.is_empty());
        assert_eq!(g.buffered_len(), 2);
        g.insert(1, 12); // third record fills the gutter
        let batch = q.try_pop().unwrap();
        assert_eq!(batch.node, 1);
        assert_eq!(batch.others, vec![10, 11, 12]);
        assert_eq!(g.buffered_len(), 0);
    }

    #[test]
    fn gutters_are_independent() {
        let (mut g, q) = setup(4, 2);
        g.insert(0, 1);
        g.insert(1, 0);
        g.insert(2, 3);
        assert!(q.is_empty(), "no gutter full yet");
        g.insert(0, 2);
        assert_eq!(q.try_pop().unwrap().node, 0);
    }

    #[test]
    fn force_flush_emits_all_nonempty() {
        let (mut g, q) = setup(5, 100);
        g.insert(0, 1);
        g.insert(3, 4);
        g.insert(3, 2);
        g.force_flush();
        let mut nodes = Vec::new();
        while let Some(b) = q.try_pop() {
            nodes.push((b.node, b.others.len()));
        }
        assert_eq!(nodes, vec![(0, 1), (3, 2)]);
        assert_eq!(g.buffered_len(), 0);
        // Second flush is a no-op.
        g.force_flush();
        assert!(q.try_pop().is_none());
    }

    #[test]
    fn flush_node_emits_one_partial_gutter() {
        let (mut g, q) = setup(4, 100);
        g.insert(2, 7);
        g.insert(2, 8);
        g.insert(1, 9);
        g.flush_node(2);
        let b = q.try_pop().unwrap();
        assert_eq!((b.node, b.others), (2, vec![7, 8]));
        assert!(q.try_pop().is_none(), "other gutters untouched");
        assert_eq!(g.buffered_len(), 1);
        // Flushing an empty gutter emits nothing.
        g.flush_node(2);
        assert!(q.try_pop().is_none());
    }

    #[test]
    fn capacity_of_zero_clamped_to_one() {
        let (mut g, q) = setup(2, 0);
        g.insert(0, 1); // immediately emitted
        assert_eq!(q.try_pop().unwrap().others, vec![1]);
    }

    #[test]
    fn sketch_sized_capacity() {
        let queue = Arc::new(WorkQueue::with_capacity(16));
        // 8000-byte sketch at f = 0.5 -> 1000 records.
        let g = LeafGutters::sized_to_sketch(2, 8000, 0.5, queue);
        assert_eq!(g.capacity(), 1000);
    }

    #[test]
    fn counts_emitted_batches() {
        let (mut g, q) = setup(2, 2);
        for i in 0..10 {
            g.insert(0, i);
        }
        assert_eq!(g.emitted_batches(), 5);
        while q.try_pop().is_some() {}
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Leaf gutters deliver the exact inserted multiset per node, in
        /// arrival order, in batches no larger than capacity (except the
        /// force-flush tail which may be smaller).
        #[test]
        fn delivers_in_order_batches(
            num_nodes in 1u32..30,
            capacity in 1usize..20,
            inserts in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..300)
        ) {
            let queue = Arc::new(WorkQueue::with_capacity(1 << 16));
            let mut gutters = LeafGutters::new(num_nodes as usize, capacity, Arc::clone(&queue));
            let mut expected: HashMap<u32, Vec<u32>> = HashMap::new();
            for (dst, other) in inserts {
                let dst = dst % num_nodes;
                gutters.insert(dst, other);
                expected.entry(dst).or_default().push(other);
            }
            gutters.force_flush();
            prop_assert_eq!(gutters.buffered_len(), 0);

            let mut got: HashMap<u32, Vec<u32>> = HashMap::new();
            while let Some(b) = queue.try_pop() {
                prop_assert!(b.others.len() <= capacity.max(1));
                got.entry(b.node).or_default().extend(b.others);
            }
            prop_assert_eq!(got, expected);
        }
    }
}
