//! A persistent fork-join worker pool for data-parallel phases.
//!
//! The streaming Borůvka query engine folds every vertex's round slice into
//! per-supernode accumulators once per round — a data-parallel scan whose
//! unit of work (one XOR of a round slice) is far too small to pay a thread
//! spawn per round. [`WorkerPool`] keeps its threads parked between
//! dispatches, so one [`WorkerPool::run`] round-trip costs a couple of
//! condvar signals instead of `threads × spawn`, and a multi-round query
//! reuses the same pool for every fold, sample, and disk-read phase.
//!
//! The calling thread participates as worker 0 — a pool of `threads` spawns
//! only `threads − 1` OS threads, and `WorkerPool::new(1)` spawns none (the
//! dispatch is then a plain inline call, so a single-threaded query pays
//! nothing for going through the pool).

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The lifetime-erased task pointer workers execute. Soundness relies on
/// [`WorkerPool::run`] not returning until every worker has finished the
/// task (see the safety comment there).
type TaskRef = &'static (dyn Fn(usize) + Sync);

struct PoolState {
    /// Current task, present only while a dispatch is in flight.
    task: Option<TaskRef>,
    /// Bumped once per dispatch; workers wait for a new epoch.
    epoch: u64,
    /// Spawned workers still running the current task.
    active: usize,
    /// The first panicking worker's payload, rethrown by `run` on the
    /// calling thread so `panic::catch_unwind` callers see the original
    /// payload (message, downcastable type), not a pool-invented one.
    panic_payload: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signals parked workers that a new task (or shutdown) is available.
    task_ready: Condvar,
    /// Signals the dispatching thread that all workers finished.
    task_done: Condvar,
}

/// A fixed-size fork-join pool: [`Self::run`] executes one closure on every
/// worker concurrently (each receives its worker index) and returns when all
/// are done.
pub struct WorkerPool {
    shared: Arc<Shared>,
    threads: usize,
    handles: Vec<JoinHandle<()>>,
    /// Held for the whole of [`Self::run`]: the pool executes exactly one
    /// task at a time, and the `unsafe` lifetime erasure in `run` is only
    /// sound if a second dispatch cannot reset `active`/`epoch` while the
    /// first task's borrow is still in use (see the safety comment there).
    /// Concurrent callers queue here; a *nested* dispatch from inside a
    /// task deadlocks on this lock — never call `run` from a task.
    dispatch: Mutex<()>,
}

impl WorkerPool {
    /// Pool of `threads` workers (clamped to ≥ 1): the calling thread plus
    /// `threads − 1` parked OS threads.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                task: None,
                epoch: 0,
                active: 0,
                panic_payload: None,
                shutdown: false,
            }),
            task_ready: Condvar::new(),
            task_done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, index))
            })
            .collect();
        WorkerPool { shared, threads, handles, dispatch: Mutex::new(()) }
    }

    /// Number of workers (including the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `task(index)` on every worker (`index ∈ 0..threads`)
    /// concurrently; the caller runs index 0. Returns once every worker has
    /// finished. Panics (rethrowing) if the caller's task panicked, after
    /// all workers have still been waited for; a panic in a spawned worker's
    /// task is converted into a panic here.
    ///
    /// The pool executes one task at a time: concurrent `run` calls from
    /// different threads are serialized (the second waits). A *nested*
    /// dispatch — a task calling `run` on its own pool — deadlocks; don't.
    pub fn run(&self, task: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() {
            task(0);
            return;
        }
        // One dispatch at a time, enforced (not just documented): without
        // this, a second `run` from another thread could reset
        // `active`/`epoch` while a worker is still executing the first
        // task, letting the first call return — and its task's borrow end —
        // before every use of it finished. Held until all workers are done.
        let _one_dispatch = self.dispatch.lock();
        // SAFETY: the `'static` lifetime is a lie told only to park the
        // reference in the shared slot. It is sound because this function
        // does not return until `active == 0`, i.e. every worker has
        // finished calling the task and will never touch the reference
        // again (workers copy it out under the lock, call it, then
        // decrement `active` — they never revisit a finished epoch); the
        // slot itself is cleared below before returning; and the dispatch
        // lock above guarantees no other `run` can touch `active`, `epoch`,
        // or the slot in between. The borrow therefore strictly outlives
        // every use.
        let erased: TaskRef =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), TaskRef>(task) };
        {
            let mut state = self.shared.state.lock();
            debug_assert!(state.active == 0 && state.task.is_none(), "dispatch not serialized");
            state.task = Some(erased);
            state.epoch += 1;
            state.active = self.handles.len();
            state.panic_payload = None;
            self.shared.task_ready.notify_all();
        }
        // The caller is worker 0. Catch a panic so the workers are always
        // joined-for before unwinding out (otherwise they could outlive the
        // borrowed task data).
        let caller = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(0)));
        let worker_payload = {
            let mut state = self.shared.state.lock();
            while state.active > 0 {
                self.shared.task_done.wait(&mut state);
            }
            state.task = None;
            state.panic_payload.take()
        };
        // Exactly one payload is rethrown per dispatch: the caller's panic
        // wins (its worker-0 task died the same way the workers' did, and it
        // unwound on *this* thread), else the first worker's original
        // payload — never a pool-invented substitute.
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = worker_payload {
            std::panic::resume_unwind(payload);
        }
    }

    /// Contiguous partition of `0..len` for worker `index`: the range this
    /// worker should own in an `len`-item scan. Ranges tile `0..len` in
    /// worker order (so concatenating per-worker results in index order
    /// preserves the serial order) and are empty once `len` is exhausted.
    pub fn partition(&self, len: usize, index: usize) -> std::ops::Range<usize> {
        partition(len, self.threads, index)
    }
}

/// Contiguous slice of `0..len` owned by worker `index` of `parts`.
pub fn partition(len: usize, parts: usize, index: usize) -> std::ops::Range<usize> {
    let per = len.div_ceil(parts.max(1)).max(1);
    let start = (index * per).min(len);
    let end = ((index + 1) * per).min(len);
    start..end
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let task = {
            let mut state = shared.state.lock();
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    break state.task.expect("task present while epoch is live");
                }
                shared.task_ready.wait(&mut state);
            }
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(index)));
        let mut state = shared.state.lock();
        if let Err(payload) = result {
            // First panic wins; later ones are dropped (only one payload
            // can be rethrown on the calling thread anyway).
            state.panic_payload.get_or_insert(payload);
        }
        state.active -= 1;
        if state.active == 0 {
            shared.task_done.notify_all();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
            self.shared.task_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_worker_runs_exactly_once_per_dispatch() {
        let pool = WorkerPool::new(4);
        let counts: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..50 {
            pool.run(&|w| {
                counts[w].fetch_add(1, Ordering::Relaxed);
            });
        }
        for (w, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 50, "worker {w}");
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        // A FnMut-style capture through a Mutex: with one thread the task
        // runs on the caller, so side effects are immediately visible.
        let hits = Mutex::new(0);
        pool.run(&|w| {
            assert_eq!(w, 0);
            *hits.lock() += 1;
        });
        assert_eq!(hits.into_inner(), 1);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        pool.run(&|_| {});
    }

    #[test]
    fn borrows_stack_data_mutably_through_per_worker_locks() {
        // The engine's usage pattern: per-worker sinks behind Mutexes,
        // borrowed from the caller's stack.
        let pool = WorkerPool::new(3);
        let sinks: Vec<Mutex<Vec<usize>>> = (0..3).map(|_| Mutex::new(Vec::new())).collect();
        let items = 100usize;
        pool.run(&|w| {
            let mut sink = sinks[w].lock();
            for i in pool.partition(items, w) {
                sink.push(i);
            }
        });
        let mut all: Vec<usize> = sinks.into_iter().flat_map(|m| m.into_inner()).collect();
        // Contiguous partitions concatenated in worker order = serial order.
        assert_eq!(all, (0..items).collect::<Vec<_>>());
        all.sort_unstable();
        assert_eq!(all.len(), items);
    }

    #[test]
    fn partition_tiles_the_range_in_order() {
        for len in [0usize, 1, 5, 16, 17, 100] {
            for parts in [1usize, 2, 3, 8, 50] {
                let mut covered = Vec::new();
                for w in 0..parts {
                    covered.extend(partition(len, parts, w));
                }
                assert_eq!(covered, (0..len).collect::<Vec<_>>(), "len={len} parts={parts}");
            }
        }
    }

    #[test]
    fn pool_survives_many_reuses_with_work_between() {
        let pool = WorkerPool::new(2);
        let total = AtomicUsize::new(0);
        for round in 0..200 {
            pool.run(&|w| {
                total.fetch_add(w + round, Ordering::Relaxed);
            });
        }
        let expected: usize = (0..200).map(|r| (r) + (r + 1)).sum();
        assert_eq!(total.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn concurrent_dispatchers_are_serialized_not_interleaved() {
        // Two threads hammering run() on one shared pool: every dispatch
        // must see all its workers run exactly once, with no cross-task
        // interleaving (the soundness property the dispatch lock enforces —
        // without it a second dispatch could reset the epoch under a
        // still-running first task).
        let pool = Arc::new(WorkerPool::new(3));
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for _ in 0..100 {
                        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
                        pool.run(&|w| {
                            hits[w].fetch_add(1, Ordering::Relaxed);
                        });
                        for (w, h) in hits.iter().enumerate() {
                            assert_eq!(h.load(Ordering::Relaxed), 1, "worker {w}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|w| {
                if w == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool remains usable afterwards.
        let ran = AtomicUsize::new(0);
        pool.run(&|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn worker_panic_payload_survives_intact_and_pool_stays_dispatchable() {
        // The regression this pins: a panicking task must (a) leave the pool
        // dispatchable and (b) rethrow the *original* payload on the calling
        // thread, exactly once — not a pool-invented "task panicked" string.
        #[derive(Debug, PartialEq)]
        struct Distinctive(u64);

        let pool = WorkerPool::new(3);
        let rethrows = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|w| {
                if w == 2 {
                    std::panic::panic_any(Distinctive(0xDEAD));
                }
            });
            rethrows.fetch_add(1, Ordering::Relaxed); // unreachable if run panicked
        }));
        let payload = result.expect_err("worker panic must propagate");
        let payload = payload.downcast::<Distinctive>().expect("original payload type");
        assert_eq!(*payload, Distinctive(0xDEAD));
        assert_eq!(rethrows.load(Ordering::Relaxed), 0, "run must not return after a panic");

        // (a) the pool dispatches again, and a clean dispatch does not
        // resurrect the previous payload (rethrown exactly once).
        let ran = AtomicUsize::new(0);
        let clean = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|_| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(clean.is_ok(), "a clean dispatch after a panic must not rethrow");
        assert_eq!(ran.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn caller_panic_wins_over_worker_panic() {
        // When both the caller's worker-0 task and a spawned worker panic,
        // exactly one payload is rethrown — the caller's, since it unwound
        // on the dispatching thread.
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|w| {
                if w == 0 {
                    std::panic::panic_any("caller payload");
                }
                std::panic::panic_any("worker payload");
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let s = payload.downcast::<&str>().expect("payload type");
        assert_eq!(*s, "caller payload");
        pool.run(&|_| {}); // still dispatchable
    }

    #[test]
    fn caller_panic_still_joins_workers_first() {
        let pool = WorkerPool::new(3);
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|w| {
                if w == 0 {
                    panic!("caller boom");
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
                finished.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        // Both spawned workers must have completed before the panic
        // propagated (the soundness requirement).
        assert_eq!(finished.load(Ordering::Relaxed), 2);
    }
}
