//! The bounded work queue between the buffering system and Graph Workers.
//!
//! Paper §5.1: "The work queue can hold up to 8·g batches, where g is the
//! number of Graph Workers. A moderate work queue capacity of 8g limits the
//! time either the buffering system or graph workers spend waiting on the
//! queue … while keeping the memory usage of the work queue low."
//!
//! Producers block while the queue is full; consumers block while it is
//! empty. Closing the queue wakes all consumers, which drain remaining
//! batches and then observe `None`.
//!
//! The queue is generic over its item type (defaulting to [`Batch`], the
//! ingestion unit) so other bounded producer/consumer pipelines — e.g. the
//! disk store's group prefetcher on the streaming query path — reuse the
//! same blocking/backpressure machinery.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

/// A batch of updates bound for a single graph node (paper Figure 8's
/// `get_batch` payload): the list of *other endpoints* of edges incident to
/// `node`, each representing one toggle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Destination graph node whose sketches this batch updates.
    pub node: u32,
    /// Other endpoint of each buffered edge update.
    pub others: Vec<u32>,
}

struct Inner<T> {
    queue: VecDeque<T>,
    closed: bool,
    /// Items pushed but not yet acknowledged via [`WorkQueue::task_done`].
    outstanding: usize,
}

/// Bounded blocking MPMC queue, of [`Batch`]es by default.
///
/// Also tracks *outstanding work*: each pushed item stays outstanding until
/// a consumer calls [`WorkQueue::task_done`], which is what lets the query
/// path's `cleanup()` (paper Figure 9) wait until every buffered update has
/// actually been applied to the sketches.
pub struct WorkQueue<T = Batch> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    all_done: Condvar,
    capacity: usize,
}

impl<T> WorkQueue<T> {
    /// Queue with the paper's capacity rule: 8 batches per worker.
    pub fn for_workers(num_workers: usize) -> Self {
        Self::with_capacity(8 * num_workers.max(1))
    }

    /// Queue with an explicit capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0);
        WorkQueue {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
                outstanding: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            all_done: Condvar::new(),
            capacity,
        }
    }

    /// Push an item, blocking while the queue is full. Returns `false` if
    /// the queue has been closed (the item is dropped).
    pub fn push(&self, item: T) -> bool {
        let mut inner = self.inner.lock();
        while inner.queue.len() >= self.capacity && !inner.closed {
            self.not_full.wait(&mut inner);
        }
        if inner.closed {
            return false;
        }
        inner.queue.push_back(item);
        inner.outstanding += 1;
        drop(inner);
        self.not_empty.notify_one();
        true
    }

    /// Acknowledge that a popped item has been fully processed.
    pub fn task_done(&self) {
        let mut inner = self.inner.lock();
        debug_assert!(inner.outstanding > 0, "task_done without outstanding work");
        inner.outstanding = inner.outstanding.saturating_sub(1);
        if inner.outstanding == 0 {
            drop(inner);
            self.all_done.notify_all();
        }
    }

    /// Block until every pushed batch has been acknowledged via
    /// [`Self::task_done`]. (The producer must not be pushing concurrently,
    /// which matches the query path: `force_flush` happens-before
    /// `wait_idle`.)
    pub fn wait_idle(&self) {
        let mut inner = self.inner.lock();
        while inner.outstanding > 0 {
            self.all_done.wait(&mut inner);
        }
    }

    /// Number of pushed-but-unacknowledged batches.
    pub fn outstanding(&self) -> usize {
        self.inner.lock().outstanding
    }

    /// Pop an item, blocking while the queue is empty. Returns `None` once
    /// the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(item) = inner.queue.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            self.not_empty.wait(&mut inner);
        }
    }

    /// Drain every currently queued item through `f`, acknowledging each —
    /// the single-threaded consumer pattern used by the shard router, which
    /// buffers through a queue and forwards batches inline rather than from
    /// worker threads. Returns the number of items drained.
    pub fn drain_with(&self, mut f: impl FnMut(T)) -> usize {
        let mut drained = 0;
        while let Some(item) = self.try_pop() {
            f(item);
            self.task_done();
            drained += 1;
        }
        drained
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        let item = inner.queue.pop_front();
        if item.is_some() {
            drop(inner);
            self.not_full.notify_one();
        }
        item
    }

    /// Close the queue: producers fail fast, consumers drain then stop.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once closed.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn batch(node: u32) -> Batch {
        Batch { node, others: vec![node + 1] }
    }

    #[test]
    fn fifo_order() {
        let q = WorkQueue::with_capacity(4);
        assert!(q.push(batch(1)));
        assert!(q.push(batch(2)));
        assert_eq!(q.pop().unwrap().node, 1);
        assert_eq!(q.pop().unwrap().node, 2);
    }

    #[test]
    fn capacity_rule() {
        assert_eq!(WorkQueue::<Batch>::for_workers(6).capacity(), 48);
        assert_eq!(WorkQueue::<Batch>::for_workers(0).capacity(), 8);
    }

    #[test]
    fn generic_items_flow_through() {
        // The prefetcher instantiation: queue of (group, bytes) pairs.
        let q: WorkQueue<(u32, Vec<u8>)> = WorkQueue::with_capacity(2);
        assert!(q.push((7, vec![1, 2, 3])));
        assert_eq!(q.pop(), Some((7, vec![1, 2, 3])));
        q.close();
        assert!(!q.push((8, vec![])));
    }

    #[test]
    fn close_drains_then_none() {
        let q = WorkQueue::with_capacity(4);
        q.push(batch(7));
        q.close();
        assert!(!q.push(batch(8)), "push after close must fail");
        assert_eq!(q.pop().unwrap().node, 7);
        assert!(q.pop().is_none());
    }

    #[test]
    fn try_pop_nonblocking() {
        let q = WorkQueue::with_capacity(2);
        assert!(q.try_pop().is_none());
        q.push(batch(1));
        assert_eq!(q.try_pop().unwrap().node, 1);
    }

    #[test]
    fn blocking_producer_unblocked_by_consumer() {
        let q = Arc::new(WorkQueue::with_capacity(1));
        q.push(batch(1));
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(batch(2)));
        // Give the producer a moment to block on the full queue.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop().unwrap().node, 1);
        assert!(producer.join().unwrap());
        assert_eq!(q.pop().unwrap().node, 2);
    }

    #[test]
    fn multi_producer_multi_consumer_delivers_everything() {
        let q = Arc::new(WorkQueue::with_capacity(8));
        let producers: Vec<_> = (0..4u32)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..250u32 {
                        assert!(q.push(Batch { node: p * 1000 + i, others: vec![] }));
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(b) = q.pop() {
                        got.push(b.node);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let mut expected: Vec<u32> =
            (0..4u32).flat_map(|p| (0..250).map(move |i| p * 1000 + i)).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn wait_idle_blocks_until_all_acknowledged() {
        let q = Arc::new(WorkQueue::with_capacity(16));
        for i in 0..10 {
            q.push(batch(i));
        }
        assert_eq!(q.outstanding(), 10);
        let q2 = Arc::clone(&q);
        let worker = std::thread::spawn(move || {
            let mut n = 0;
            while let Some(_b) = q2.try_pop() {
                std::thread::sleep(std::time::Duration::from_millis(1));
                q2.task_done();
                n += 1;
            }
            n
        });
        q.wait_idle();
        assert_eq!(q.outstanding(), 0);
        assert_eq!(worker.join().unwrap(), 10);
    }

    #[test]
    fn drain_with_empties_and_acknowledges() {
        let q = WorkQueue::with_capacity(8);
        for i in 0..5 {
            q.push(batch(i));
        }
        assert_eq!(q.outstanding(), 5);
        let mut got = Vec::new();
        assert_eq!(q.drain_with(|b| got.push(b.node)), 5);
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.outstanding(), 0, "drained batches must be acknowledged");
        assert_eq!(q.drain_with(|_| panic!("queue is empty")), 0);
    }

    #[test]
    fn wait_idle_returns_immediately_when_empty() {
        let q = WorkQueue::<Batch>::with_capacity(2);
        q.wait_idle(); // must not hang
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q = Arc::new(WorkQueue::<Batch>::with_capacity(2));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(consumer.join().unwrap().is_none());
    }
}
