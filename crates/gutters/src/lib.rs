//! Buffering substrate (paper §4–5, Figures 7–8).
//!
//! Fine-grained stream updates have no locality: applying each one to its two
//! node sketches immediately costs a cache miss per subsketch in RAM and
//! `Ω(1)` I/Os on disk (paper Observation 1). GraphZeppelin instead routes
//! every update through a *buffering system* that emits large per-node
//! batches:
//!
//! - [`work_queue`] — the bounded producer/consumer queue between the
//!   buffering system and the Graph Workers (capacity 8·g, paper §5.1).
//! - [`leaf`] — leaf-only gutters: one in-RAM buffer per graph node, used
//!   when memory allows (`M > V·B`).
//! - [`tree`] — the on-disk gutter tree (a simplified buffer tree, paper
//!   §4.1): internal nodes with fixed-size disk buffers, recursive flushes,
//!   leaf gutters sized to the node sketch.
//! - [`stats`] — I/O accounting, the measurable analogue of the paper's
//!   hybrid-model I/O complexity claims.
//! - [`worker_pool`] — a persistent fork-join pool for data-parallel phases
//!   (the streaming Borůvka query engine's per-round fold/sample/read
//!   dispatch).

pub mod leaf;
pub mod stats;
pub mod tree;
pub mod work_queue;
pub mod worker_pool;

pub use leaf::LeafGutters;
pub use stats::{IoStats, ServeStats};
pub use tree::{GutterTree, GutterTreeConfig};
pub use work_queue::{Batch, WorkQueue};
pub use worker_pool::WorkerPool;

/// A buffering system: ingests `(destination node, other endpoint)` records
/// and emits per-node batches into a [`WorkQueue`].
///
/// The two implementations mirror the paper's §5.1: [`LeafGutters`] when the
/// gutters fit in RAM, [`GutterTree`] when they must live on disk.
pub trait BufferingSystem {
    /// Buffer one update bound for `dst` (the paper's
    /// `buffer_insert({dst, other})`).
    fn insert(&mut self, dst: u32, other: u32);

    /// Flush every buffered update out to the work queue (the start of
    /// query processing, paper Figure 9 `force_flush`).
    fn force_flush(&mut self);

    /// Total updates currently buffered (not yet emitted).
    fn buffered_len(&self) -> usize;
}
