//! The on-disk gutter tree (paper §4.1, §5.1).
//!
//! A simplified buffer tree: an in-RAM root buffer, internal tree nodes with
//! fixed-size pre-allocated disk buffers, and one leaf gutter per graph node.
//! Inserts go to the root; a full buffer is partitioned among its children
//! (recursively flushing any child that would overflow); a full **leaf
//! gutter** is emitted to the work queue as a batch for its graph node.
//! Because leaf data never persists across emits, no rebalancing is ever
//! needed (paper §4.1), and the total I/O for a stream of length `N` is
//! `sort(N)` (Lemma 4).
//!
//! Paper defaults: 8 MB internal buffers written in 16 KB blocks, giving a
//! fan-out of 512; each leaf gutter is twice the node-sketch size.

use crate::stats::IoStats;
use crate::work_queue::{Batch, WorkQueue};
use crate::BufferingSystem;
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::PathBuf;
use std::sync::Arc;

/// Configuration of a [`GutterTree`].
#[derive(Debug, Clone)]
pub struct GutterTreeConfig {
    /// Number of graph nodes (= leaf gutters).
    pub num_nodes: u32,
    /// Records a leaf gutter holds before emitting a batch
    /// (paper: 2× node-sketch size worth).
    pub leaf_capacity_updates: usize,
    /// Internal node buffer size in bytes (paper: 8 MB).
    pub buffer_bytes: usize,
    /// Fan-out of internal nodes (paper: buffer/block = 512).
    pub fanout: usize,
    /// Backing file path (pre-allocated at construction).
    pub path: PathBuf,
}

impl GutterTreeConfig {
    /// The paper's §5.1 parameters, with the leaf gutter sized to 2× the
    /// node sketch.
    pub fn paper_defaults(num_nodes: u32, sketch_bytes: usize, path: PathBuf) -> Self {
        GutterTreeConfig {
            num_nodes,
            leaf_capacity_updates: (2 * sketch_bytes / 4).max(1),
            buffer_bytes: 8 << 20,
            fanout: 512,
            path,
        }
    }

    /// Small parameters for tests: exercises multi-level trees on tiny
    /// inputs.
    pub fn small_for_tests(num_nodes: u32, path: PathBuf) -> Self {
        GutterTreeConfig {
            num_nodes,
            leaf_capacity_updates: 8,
            buffer_bytes: 16 * RECORD_BYTES, // 16-record buffers
            fanout: 4,
            path,
        }
    }
}

const RECORD_BYTES: usize = 8; // (dst: u32, other: u32)
const LEAF_RECORD_BYTES: usize = 4; // leaf gutters store only `other`

/// On-disk gutter tree implementing [`BufferingSystem`].
pub struct GutterTree {
    config: GutterTreeConfig,
    file: File,
    stats: Arc<IoStats>,
    queue: Arc<WorkQueue>,
    /// Root buffer (RAM) of (dst, other) records.
    root: Vec<(u32, u32)>,
    root_capacity: usize,
    /// Depth: number of hops root→leaf (≥ 1). Internal levels are 1..depth.
    depth: u32,
    /// Per-level leaf span of one node at that level (`fanout^(depth-k)`).
    level_span: Vec<u64>,
    /// Flattened internal-node fill counts (levels 1..depth).
    internal_fill: Vec<usize>,
    /// Start of each internal level in `internal_fill` / file regions.
    level_base: Vec<usize>,
    /// Per-leaf fill counts.
    leaf_fill: Vec<usize>,
    /// File offset where leaf regions begin.
    leaf_region_start: u64,
    buffered: usize,
    emitted_batches: u64,
}

impl GutterTree {
    /// Build the tree, pre-allocating its backing file.
    pub fn new(config: GutterTreeConfig, queue: Arc<WorkQueue>) -> std::io::Result<Self> {
        assert!(config.num_nodes >= 1);
        assert!(config.fanout >= 2, "fan-out must be at least 2");
        let leaves = config.num_nodes as u64;
        let fanout = config.fanout as u64;

        // depth = smallest d ≥ 1 with fanout^d ≥ leaves.
        let mut depth = 1u32;
        let mut reach = fanout;
        while reach < leaves {
            reach = reach.saturating_mul(fanout);
            depth += 1;
        }

        // level_span[k] = leaves covered by one node at level k (k=0 root).
        let mut level_span = vec![0u64; depth as usize + 1];
        level_span[depth as usize] = 1;
        for k in (0..depth as usize).rev() {
            level_span[k] = level_span[k + 1].saturating_mul(fanout);
        }

        // Internal levels 1..depth: node counts and bases.
        let mut level_base = Vec::new();
        let mut total_internal = 0usize;
        #[allow(clippy::needless_range_loop)]
        for k in 1..depth as usize {
            level_base.push(total_internal);
            total_internal += leaves.div_ceil(level_span[k]) as usize;
        }
        level_base.push(total_internal); // sentinel

        let leaf_region_start = (total_internal * config.buffer_bytes) as u64;
        let file_len =
            leaf_region_start + leaves * (config.leaf_capacity_updates * LEAF_RECORD_BYTES) as u64;

        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&config.path)?;
        file.set_len(file_len)?;

        let root_capacity = (config.buffer_bytes / RECORD_BYTES).max(1);
        Ok(GutterTree {
            root: Vec::with_capacity(root_capacity),
            root_capacity,
            depth,
            level_span,
            internal_fill: vec![0; total_internal],
            level_base,
            leaf_fill: vec![0; leaves as usize],
            leaf_region_start,
            stats: Arc::new(IoStats::new()),
            file,
            queue,
            buffered: 0,
            emitted_batches: 0,
            config,
        })
    }

    /// I/O counters for this tree.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Number of batches emitted to the queue.
    pub fn emitted_batches(&self) -> u64 {
        self.emitted_batches
    }

    /// Tree depth (root→leaf hops).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    fn internal_capacity(&self) -> usize {
        self.config.buffer_bytes / RECORD_BYTES
    }

    /// Index of the level-`k` internal node covering leaf `t` (k ≥ 1).
    fn node_at(&self, k: usize, leaf: u64) -> usize {
        self.level_base[k - 1] + (leaf / self.level_span[k]) as usize
    }

    fn internal_offset(&self, node_index: usize) -> u64 {
        (node_index * self.config.buffer_bytes) as u64
    }

    fn leaf_offset(&self, leaf: u32) -> u64 {
        self.leaf_region_start
            + leaf as u64 * (self.config.leaf_capacity_updates * LEAF_RECORD_BYTES) as u64
    }

    fn write_internal(&mut self, node_index: usize, records: &[(u32, u32)]) -> std::io::Result<()> {
        let mut bytes = Vec::with_capacity(records.len() * RECORD_BYTES);
        for &(d, o) in records {
            bytes.extend_from_slice(&d.to_le_bytes());
            bytes.extend_from_slice(&o.to_le_bytes());
        }
        let off = self.internal_offset(node_index)
            + (self.internal_fill[node_index] * RECORD_BYTES) as u64;
        self.file.write_all_at(&bytes, off)?;
        self.stats.record_write(bytes.len() as u64);
        self.internal_fill[node_index] += records.len();
        Ok(())
    }

    fn read_internal(&self, node_index: usize) -> std::io::Result<Vec<(u32, u32)>> {
        let n = self.internal_fill[node_index];
        let mut bytes = vec![0u8; n * RECORD_BYTES];
        self.file.read_exact_at(&mut bytes, self.internal_offset(node_index))?;
        self.stats.record_read(bytes.len() as u64);
        Ok(bytes
            .chunks_exact(RECORD_BYTES)
            .map(|c| {
                (
                    u32::from_le_bytes(c[0..4].try_into().unwrap()),
                    u32::from_le_bytes(c[4..8].try_into().unwrap()),
                )
            })
            .collect())
    }

    /// Push records into the level-`k` node covering `leaf_group`; flush it
    /// first if it would overflow.
    fn push_to_internal(
        &mut self,
        k: usize,
        leaf: u64,
        records: Vec<(u32, u32)>,
    ) -> std::io::Result<()> {
        let node_index = self.node_at(k, leaf);
        if self.internal_fill[node_index] + records.len() > self.internal_capacity() {
            self.flush_internal(k, leaf, records)
        } else {
            self.write_internal(node_index, &records)
        }
    }

    /// Flush the level-`k` node covering `leaf`: stored records plus
    /// `incoming` are partitioned among its children.
    fn flush_internal(
        &mut self,
        k: usize,
        leaf: u64,
        incoming: Vec<(u32, u32)>,
    ) -> std::io::Result<()> {
        let node_index = self.node_at(k, leaf);
        let mut all = self.read_internal(node_index)?;
        self.internal_fill[node_index] = 0;
        all.extend(incoming);
        self.partition_down(k, all)
    }

    /// Route records from level `k` to its children (level k+1 or leaves).
    fn partition_down(&mut self, k: usize, records: Vec<(u32, u32)>) -> std::io::Result<()> {
        let child_level = k + 1;
        let child_span = self.level_span[child_level];
        // Group by child. Sorting by destination gives contiguous groups and
        // is what makes the tree's I/O pattern sequential per child.
        let mut records = records;
        records.sort_unstable_by_key(|&(d, _)| d);
        let mut i = 0;
        while i < records.len() {
            let group_id = records[i].0 as u64 / child_span;
            let mut j = i;
            while j < records.len() && records[j].0 as u64 / child_span == group_id {
                j += 1;
            }
            let part: Vec<(u32, u32)> = records[i..j].to_vec();
            if child_level == self.depth as usize {
                // Children are leaf gutters; within the group, split by leaf.
                let mut s = 0;
                while s < part.len() {
                    let dst = part[s].0;
                    let mut t = s;
                    while t < part.len() && part[t].0 == dst {
                        t += 1;
                    }
                    let others: Vec<u32> = part[s..t].iter().map(|&(_, o)| o).collect();
                    self.push_to_leaf(dst, &others)?;
                    s = t;
                }
            } else {
                self.push_to_internal(child_level, group_id * child_span, part)?;
            }
            i = j;
        }
        Ok(())
    }

    /// Append records to a leaf gutter, emitting a batch when it fills.
    fn push_to_leaf(&mut self, leaf: u32, others: &[u32]) -> std::io::Result<()> {
        let cap = self.config.leaf_capacity_updates;
        let fill = self.leaf_fill[leaf as usize];
        if fill + others.len() >= cap {
            // Read stored records, combine, emit one batch, reset.
            let mut stored = vec![0u8; fill * LEAF_RECORD_BYTES];
            self.file.read_exact_at(&mut stored, self.leaf_offset(leaf))?;
            self.stats.record_read(stored.len() as u64);
            let mut combined: Vec<u32> = stored
                .chunks_exact(LEAF_RECORD_BYTES)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            combined.extend_from_slice(others);
            self.leaf_fill[leaf as usize] = 0;
            // Both the stored records and the in-transit `others` leave the
            // buffering system here.
            self.buffered -= fill + others.len();
            self.emitted_batches += 1;
            self.queue.push(Batch { node: leaf, others: combined });
        } else {
            let mut bytes = Vec::with_capacity(others.len() * LEAF_RECORD_BYTES);
            for &o in others {
                bytes.extend_from_slice(&o.to_le_bytes());
            }
            let off = self.leaf_offset(leaf) + (fill * LEAF_RECORD_BYTES) as u64;
            self.file.write_all_at(&bytes, off)?;
            self.stats.record_write(bytes.len() as u64);
            self.leaf_fill[leaf as usize] += others.len();
        }
        Ok(())
    }

    fn flush_root(&mut self) -> std::io::Result<()> {
        let records = std::mem::take(&mut self.root);
        // Root records are not yet on disk; they are "buffered" only in the
        // accounting sense handled by insert/buffered_len.
        self.partition_down(0, records)
    }

    fn flush_everything(&mut self) -> std::io::Result<()> {
        self.flush_root()?;
        // Flush internal levels top-down so records cascade to leaves.
        for k in 1..self.depth as usize {
            let span = self.level_span[k];
            let nodes = (self.config.num_nodes as u64).div_ceil(span);
            for j in 0..nodes {
                let node_index = self.level_base[k - 1] + j as usize;
                if self.internal_fill[node_index] > 0 {
                    self.flush_internal(k, j * span, Vec::new())?;
                }
            }
        }
        // Emit every nonempty leaf.
        for leaf in 0..self.config.num_nodes {
            let fill = self.leaf_fill[leaf as usize];
            if fill == 0 {
                continue;
            }
            let mut stored = vec![0u8; fill * LEAF_RECORD_BYTES];
            self.file.read_exact_at(&mut stored, self.leaf_offset(leaf))?;
            self.stats.record_read(stored.len() as u64);
            let others: Vec<u32> = stored
                .chunks_exact(LEAF_RECORD_BYTES)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            self.leaf_fill[leaf as usize] = 0;
            self.buffered -= fill;
            self.emitted_batches += 1;
            self.queue.push(Batch { node: leaf, others });
        }
        Ok(())
    }
}

impl Drop for GutterTree {
    fn drop(&mut self) {
        // Best-effort cleanup of the backing file (buffered updates are
        // gone with the process either way); mirrors `DiskStore`'s drop so
        // a `--disk` run leaves nothing behind. Failures are ignored.
        let _ = std::fs::remove_file(&self.config.path);
    }
}

impl BufferingSystem for GutterTree {
    fn insert(&mut self, dst: u32, other: u32) {
        debug_assert!(dst < self.config.num_nodes);
        self.root.push((dst, other));
        self.buffered += 1;
        if self.root.len() >= self.root_capacity {
            self.flush_root().expect("gutter tree flush failed");
        }
    }

    fn force_flush(&mut self) {
        self.flush_everything().expect("gutter tree force_flush failed");
    }

    fn buffered_len(&self) -> usize {
        self.buffered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn tmp(name: &str) -> gz_testutil::TempPath {
        gz_testutil::TempPath::new(&format!("gz-gutter-tree-{name}"), ".bin")
    }

    /// Drain the queue and group everything by node.
    fn drain(queue: &WorkQueue) -> HashMap<u32, Vec<u32>> {
        let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
        while let Some(b) = queue.try_pop() {
            map.entry(b.node).or_default().extend(b.others);
        }
        map
    }

    #[test]
    fn single_level_tree_routes_to_leaves() {
        let path = tmp("single");
        let queue = Arc::new(WorkQueue::with_capacity(4096));
        let config = GutterTreeConfig::small_for_tests(4, path.to_path_buf());
        let mut tree = GutterTree::new(config, Arc::clone(&queue)).unwrap();
        assert_eq!(tree.depth(), 1);
        for i in 0..20u32 {
            tree.insert(i % 4, 100 + i);
        }
        tree.force_flush();
        let got = drain(&queue);
        let mut all: Vec<(u32, u32)> =
            got.into_iter().flat_map(|(n, os)| os.into_iter().map(move |o| (n, o))).collect();
        all.sort_unstable();
        let mut expected: Vec<(u32, u32)> = (0..20u32).map(|i| (i % 4, 100 + i)).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn multi_level_tree_delivers_every_record() {
        let path = tmp("multi");
        let queue = Arc::new(WorkQueue::with_capacity(1 << 16));
        // 64 leaves, fan-out 4 -> depth 3.
        let config = GutterTreeConfig::small_for_tests(64, path.to_path_buf());
        let mut tree = GutterTree::new(config, Arc::clone(&queue)).unwrap();
        assert_eq!(tree.depth(), 3);

        let mut expected: HashMap<u32, Vec<u32>> = HashMap::new();
        for i in 0..5000u32 {
            let dst = (i * 37) % 64;
            let other = i;
            tree.insert(dst, other);
            expected.entry(dst).or_default().push(other);
        }
        tree.force_flush();
        assert_eq!(tree.buffered_len(), 0);

        let mut got = drain(&queue);
        for (_, v) in got.iter_mut() {
            v.sort_unstable();
        }
        for (_, v) in expected.iter_mut() {
            v.sort_unstable();
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn preserves_per_destination_order() {
        // Batches for a node must contain its updates in arrival order —
        // order matters for Z_2 toggles only in multiplicity, but the tree
        // should still be order-preserving per destination within a batch
        // cascade. We check multiset equality and, within each batch,
        // monotone arrival order for a single hot destination.
        let path = tmp("order");
        let queue = Arc::new(WorkQueue::with_capacity(1 << 16));
        let config = GutterTreeConfig::small_for_tests(16, path.to_path_buf());
        let mut tree = GutterTree::new(config, Arc::clone(&queue)).unwrap();
        for i in 0..200u32 {
            tree.insert(3, i);
        }
        tree.force_flush();
        let mut all = Vec::new();
        while let Some(b) = queue.try_pop() {
            assert_eq!(b.node, 3);
            all.extend(b.others);
        }
        assert_eq!(all, (0..200u32).collect::<Vec<_>>());
    }

    #[test]
    fn emits_batches_near_leaf_capacity() {
        let path = tmp("cap");
        let queue = Arc::new(WorkQueue::with_capacity(1 << 16));
        let mut config = GutterTreeConfig::small_for_tests(2, path.to_path_buf());
        config.leaf_capacity_updates = 10;
        let mut tree = GutterTree::new(config, Arc::clone(&queue)).unwrap();
        for i in 0..100u32 {
            tree.insert(0, i);
        }
        tree.force_flush();
        let mut sizes = Vec::new();
        while let Some(b) = queue.try_pop() {
            sizes.push(b.others.len());
        }
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 100);
        // All but the final force-flush batch should be ≥ leaf capacity.
        for &s in &sizes[..sizes.len().saturating_sub(1)] {
            assert!(s >= 10, "undersized batch {s} in {sizes:?}");
        }
    }

    #[test]
    fn io_is_counted() {
        let path = tmp("io");
        let queue = Arc::new(WorkQueue::with_capacity(1 << 16));
        let config = GutterTreeConfig::small_for_tests(64, path.to_path_buf());
        let mut tree = GutterTree::new(config, Arc::clone(&queue)).unwrap();
        let stats = tree.stats();
        for i in 0..2000u32 {
            tree.insert(i % 64, i);
        }
        tree.force_flush();
        assert!(stats.total_ops() > 0, "disk traffic must be recorded");
        assert!(stats.bytes_written() > 0);
        while queue.try_pop().is_some() {}
    }

    #[test]
    fn amortization_beats_per_update_io() {
        // The whole point of the tree (Lemma 4): far fewer I/O ops than
        // updates. With per-update I/O this would be ≥ N ops.
        let path = tmp("amortized");
        let queue = Arc::new(WorkQueue::with_capacity(1 << 16));
        let mut config = GutterTreeConfig::small_for_tests(256, path.to_path_buf());
        config.buffer_bytes = 512 * RECORD_BYTES;
        config.fanout = 16;
        config.leaf_capacity_updates = 64;
        let mut tree = GutterTree::new(config, Arc::clone(&queue)).unwrap();
        let stats = tree.stats();
        let n = 50_000u32;
        for i in 0..n {
            tree.insert(i % 256, i);
        }
        tree.force_flush();
        let ops = stats.total_ops();
        assert!(ops < (n as u64) / 4, "expected amortized I/O, got {ops} ops for {n} updates");
        while queue.try_pop().is_some() {}
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::BufferingSystem;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Whatever the configuration and insert sequence, force_flush
        /// delivers exactly the inserted multiset, partitioned by node.
        #[test]
        fn delivers_exact_multiset(
            num_nodes in 1u32..40,
            fanout in 2usize..6,
            buffer_records in 4usize..32,
            leaf_cap in 1usize..16,
            inserts in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..400)
        ) {
            let path = gz_testutil::TempPath::new("gz-tree-prop", ".bin");
            let config = GutterTreeConfig {
                num_nodes,
                leaf_capacity_updates: leaf_cap,
                buffer_bytes: buffer_records * 8,
                fanout,
                path: path.to_path_buf(),
            };
            let queue = Arc::new(WorkQueue::with_capacity(1 << 16));
            let mut tree = GutterTree::new(config, Arc::clone(&queue)).unwrap();

            let mut expected: HashMap<u32, Vec<u32>> = HashMap::new();
            for (dst, other) in inserts {
                let dst = dst % num_nodes;
                tree.insert(dst, other);
                expected.entry(dst).or_default().push(other);
            }
            tree.force_flush();
            prop_assert_eq!(tree.buffered_len(), 0);

            let mut got: HashMap<u32, Vec<u32>> = HashMap::new();
            while let Some(b) = queue.try_pop() {
                got.entry(b.node).or_default().extend(b.others);
            }
            for v in expected.values_mut() {
                v.sort_unstable();
            }
            for v in got.values_mut() {
                v.sort_unstable();
            }
            prop_assert_eq!(got, expected);
        }
    }
}
