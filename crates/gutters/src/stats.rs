//! I/O accounting.
//!
//! The paper's hybrid streaming model charges one I/O per block-sized disk
//! access (§2.1). Since this reproduction models "sketches on SSD" with
//! explicit file-backed stores rather than cgroup-forced swap, every
//! block access is counted here, which is what lets the experiment suite
//! verify the I/O-complexity claims (Observation 1 vs Lemma 4) directly.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe I/O counters. Cheap to share via `Arc`.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read of `bytes`.
    #[inline]
    pub fn record_read(&self, bytes: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a write of `bytes`.
    #[inline]
    pub fn record_write(&self, bytes: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Number of read operations.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of write operations.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total operations (reads + writes) — the hybrid model's I/O count.
    pub fn total_ops(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
    }

    /// Snapshot of all four counters (reads, writes, bytes_read,
    /// bytes_written).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (self.reads(), self.writes(), self.bytes_read(), self.bytes_written())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_read(100);
        s.record_read(50);
        s.record_write(16_384);
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.bytes_read(), 150);
        assert_eq!(s.bytes_written(), 16_384);
        assert_eq!(s.total_ops(), 3);
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.record_write(1);
        s.reset();
        assert_eq!(s.snapshot(), (0, 0, 0, 0));
    }

    #[test]
    fn concurrent_updates_all_counted() {
        let s = std::sync::Arc::new(IoStats::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.record_read(1);
                    }
                });
            }
        });
        assert_eq!(s.reads(), 8000);
        assert_eq!(s.bytes_read(), 8000);
    }
}
