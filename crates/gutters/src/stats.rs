//! I/O accounting.
//!
//! The paper's hybrid streaming model charges one I/O per block-sized disk
//! access (§2.1). Since this reproduction models "sketches on SSD" with
//! explicit file-backed stores rather than cgroup-forced swap, every
//! block access is counted here, which is what lets the experiment suite
//! verify the I/O-complexity claims (Observation 1 vs Lemma 4) directly.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe I/O counters. Cheap to share via `Arc`.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    sparse_promotions: AtomicU64,
    rounds_synthesized: AtomicU64,
    submissions: AtomicU64,
    completions: AtomicU64,
    depth_sum: AtomicU64,
    depth_max: AtomicU64,
    // Fault-tolerance accounting (sharded recovery, DESIGN.md §14).
    checkpoints: AtomicU64,
    replays: AtomicU64,
    batches_replayed: AtomicU64,
    reconnect_attempts: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read of `bytes`.
    #[inline]
    pub fn record_read(&self, bytes: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a write of `bytes`.
    #[inline]
    pub fn record_write(&self, bytes: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Number of read operations.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of write operations.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total operations (reads + writes) — the hybrid model's I/O count.
    pub fn total_ops(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Record one sparse→dense promotion (hybrid representation).
    #[inline]
    pub fn record_promotion(&self) {
        self.sparse_promotions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` round slices synthesized by replaying sparse sets
    /// (hybrid representation query cost).
    #[inline]
    pub fn record_synthesized(&self, n: u64) {
        self.rounds_synthesized.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one submission batch handed to the kernel (an
    /// `io_uring_enter`, or a single positioned syscall on the pread path)
    /// with `in_flight` operations pending once it returned. Tracks how
    /// deep the I/O pipeline actually runs: `submissions` counts batches,
    /// `depth_sum / submissions` is the mean post-submit depth, and
    /// `depth_max` the deepest point observed.
    #[inline]
    pub fn record_batch(&self, in_flight: u64) {
        self.submissions.fetch_add(1, Ordering::Relaxed);
        self.depth_sum.fetch_add(in_flight, Ordering::Relaxed);
        self.depth_max.fetch_max(in_flight, Ordering::Relaxed);
    }

    /// Record `n` operation completions reaped from the kernel.
    #[inline]
    pub fn record_completions(&self, n: u64) {
        self.completions.fetch_add(n, Ordering::Relaxed);
    }

    /// Submission batches handed to the kernel.
    pub fn submissions(&self) -> u64 {
        self.submissions.load(Ordering::Relaxed)
    }

    /// Operation completions reaped.
    pub fn completions(&self) -> u64 {
        self.completions.load(Ordering::Relaxed)
    }

    /// Deepest in-flight depth observed right after a submission batch.
    pub fn max_depth(&self) -> u64 {
        self.depth_max.load(Ordering::Relaxed)
    }

    /// Mean in-flight depth right after a submission batch (0.0 before any
    /// batch was recorded).
    pub fn mean_depth(&self) -> f64 {
        let subs = self.submissions();
        if subs == 0 {
            return 0.0;
        }
        self.depth_sum.load(Ordering::Relaxed) as f64 / subs as f64
    }

    /// Sparse→dense promotions performed.
    pub fn sparse_promotions(&self) -> u64 {
        self.sparse_promotions.load(Ordering::Relaxed)
    }

    /// Round slices synthesized from sparse sets.
    pub fn rounds_synthesized(&self) -> u64 {
        self.rounds_synthesized.load(Ordering::Relaxed)
    }

    /// Record one durable shard checkpoint written (a `CheckpointAck`).
    #[inline]
    pub fn record_checkpoint(&self) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one recovery replay of `batches` logged batches into a
    /// restarted worker.
    #[inline]
    pub fn record_replay(&self, batches: u64) {
        self.replays.fetch_add(1, Ordering::Relaxed);
        self.batches_replayed.fetch_add(batches, Ordering::Relaxed);
    }

    /// Record one reconnect/re-spawn attempt toward a dead worker.
    #[inline]
    pub fn record_reconnect_attempt(&self) {
        self.reconnect_attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// Durable shard checkpoints written.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// Recovery replays performed (one per revived worker).
    pub fn replays(&self) -> u64 {
        self.replays.load(Ordering::Relaxed)
    }

    /// Batches re-shipped from the replay log across all replays.
    pub fn batches_replayed(&self) -> u64 {
        self.batches_replayed.load(Ordering::Relaxed)
    }

    /// Reconnect/re-spawn attempts toward dead workers.
    pub fn reconnect_attempts(&self) -> u64 {
        self.reconnect_attempts.load(Ordering::Relaxed)
    }

    /// Fold another counter set into this one (all four counters, one atomic
    /// add each). The parallel query path accumulates per-worker `IoStats`
    /// locally and merges once per worker, so concurrent readers neither
    /// race nor contend on the shared counters per read.
    pub fn merge_from(&self, other: &IoStats) {
        self.reads.fetch_add(other.reads(), Ordering::Relaxed);
        self.writes.fetch_add(other.writes(), Ordering::Relaxed);
        self.bytes_read.fetch_add(other.bytes_read(), Ordering::Relaxed);
        self.bytes_written.fetch_add(other.bytes_written(), Ordering::Relaxed);
        self.sparse_promotions.fetch_add(other.sparse_promotions(), Ordering::Relaxed);
        self.rounds_synthesized.fetch_add(other.rounds_synthesized(), Ordering::Relaxed);
        self.submissions.fetch_add(other.submissions(), Ordering::Relaxed);
        self.completions.fetch_add(other.completions(), Ordering::Relaxed);
        self.depth_sum.fetch_add(other.depth_sum.load(Ordering::Relaxed), Ordering::Relaxed);
        // Depth is a high-water mark, not a flow: the merged maximum is the
        // max over workers, while sums and counts add exactly.
        self.depth_max.fetch_max(other.max_depth(), Ordering::Relaxed);
        self.checkpoints.fetch_add(other.checkpoints(), Ordering::Relaxed);
        self.replays.fetch_add(other.replays(), Ordering::Relaxed);
        self.batches_replayed.fetch_add(other.batches_replayed(), Ordering::Relaxed);
        self.reconnect_attempts.fetch_add(other.reconnect_attempts(), Ordering::Relaxed);
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.sparse_promotions.store(0, Ordering::Relaxed);
        self.rounds_synthesized.store(0, Ordering::Relaxed);
        self.submissions.store(0, Ordering::Relaxed);
        self.completions.store(0, Ordering::Relaxed);
        self.depth_sum.store(0, Ordering::Relaxed);
        self.depth_max.store(0, Ordering::Relaxed);
        self.checkpoints.store(0, Ordering::Relaxed);
        self.replays.store(0, Ordering::Relaxed);
        self.batches_replayed.store(0, Ordering::Relaxed);
        self.reconnect_attempts.store(0, Ordering::Relaxed);
    }

    /// Snapshot of all four counters (reads, writes, bytes_read,
    /// bytes_written).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (self.reads(), self.writes(), self.bytes_read(), self.bytes_written())
    }
}

/// Connection-level counters for a long-running serve front door
/// (DESIGN.md §15). Connection handlers record into a local instance and
/// merge once when the connection ends — the same per-worker discipline as
/// [`IoStats`] — so the daemon-wide totals sum exactly without contending
/// on every frame.
#[derive(Debug, Default)]
pub struct ServeStats {
    accepted: AtomicU64,
    shed: AtomicU64,
    killed_malformed: AtomicU64,
    timed_out: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
}

impl ServeStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one connection admitted past the client limit check.
    #[inline]
    pub fn record_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one connection shed with a `Busy` reply at admission.
    #[inline]
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one connection killed for a malformed or protocol-violating
    /// frame.
    #[inline]
    pub fn record_killed_malformed(&self) {
        self.killed_malformed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one connection dropped for missing a read or write deadline.
    #[inline]
    pub fn record_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` frames decoded from clients.
    #[inline]
    pub fn record_frames_in(&self, n: u64) {
        self.frames_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` frames written to clients.
    #[inline]
    pub fn record_frames_out(&self, n: u64) {
        self.frames_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Connections admitted.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Connections shed with `Busy`.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Connections killed for malformed frames.
    pub fn killed_malformed(&self) -> u64 {
        self.killed_malformed.load(Ordering::Relaxed)
    }

    /// Connections dropped on a missed deadline.
    pub fn timed_out(&self) -> u64 {
        self.timed_out.load(Ordering::Relaxed)
    }

    /// Frames received.
    pub fn frames_in(&self) -> u64 {
        self.frames_in.load(Ordering::Relaxed)
    }

    /// Frames sent.
    pub fn frames_out(&self) -> u64 {
        self.frames_out.load(Ordering::Relaxed)
    }

    /// Fold another counter set into this one, one atomic add each —
    /// exact-sum merge under concurrency.
    pub fn merge_from(&self, other: &ServeStats) {
        self.accepted.fetch_add(other.accepted(), Ordering::Relaxed);
        self.shed.fetch_add(other.shed(), Ordering::Relaxed);
        self.killed_malformed.fetch_add(other.killed_malformed(), Ordering::Relaxed);
        self.timed_out.fetch_add(other.timed_out(), Ordering::Relaxed);
        self.frames_in.fetch_add(other.frames_in(), Ordering::Relaxed);
        self.frames_out.fetch_add(other.frames_out(), Ordering::Relaxed);
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.accepted.store(0, Ordering::Relaxed);
        self.shed.store(0, Ordering::Relaxed);
        self.killed_malformed.store(0, Ordering::Relaxed);
        self.timed_out.store(0, Ordering::Relaxed);
        self.frames_in.store(0, Ordering::Relaxed);
        self.frames_out.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "accepted={} shed={} killed_malformed={} timed_out={} frames_in={} frames_out={}",
            self.accepted(),
            self.shed(),
            self.killed_malformed(),
            self.timed_out(),
            self.frames_in(),
            self.frames_out()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_read(100);
        s.record_read(50);
        s.record_write(16_384);
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.bytes_read(), 150);
        assert_eq!(s.bytes_written(), 16_384);
        assert_eq!(s.total_ops(), 3);
    }

    #[test]
    fn hybrid_counters_accumulate_merge_and_reset() {
        let s = IoStats::new();
        s.record_promotion();
        s.record_promotion();
        s.record_synthesized(5);
        assert_eq!(s.sparse_promotions(), 2);
        assert_eq!(s.rounds_synthesized(), 5);
        let t = IoStats::new();
        t.merge_from(&s);
        assert_eq!(t.sparse_promotions(), 2);
        assert_eq!(t.rounds_synthesized(), 5);
        t.reset();
        assert_eq!(t.sparse_promotions(), 0);
        assert_eq!(t.rounds_synthesized(), 0);
    }

    #[test]
    fn recovery_counters_accumulate_merge_and_reset() {
        let s = IoStats::new();
        s.record_checkpoint();
        s.record_checkpoint();
        s.record_replay(5);
        s.record_replay(0);
        s.record_reconnect_attempt();
        assert_eq!(s.checkpoints(), 2);
        assert_eq!(s.replays(), 2);
        assert_eq!(s.batches_replayed(), 5);
        assert_eq!(s.reconnect_attempts(), 1);
        let t = IoStats::new();
        t.record_replay(3);
        t.merge_from(&s);
        assert_eq!(t.checkpoints(), 2);
        assert_eq!(t.replays(), 3);
        assert_eq!(t.batches_replayed(), 8);
        assert_eq!(t.reconnect_attempts(), 1);
        t.reset();
        assert_eq!(
            (t.checkpoints(), t.replays(), t.batches_replayed(), t.reconnect_attempts()),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.record_write(1);
        s.reset();
        assert_eq!(s.snapshot(), (0, 0, 0, 0));
    }

    #[test]
    fn per_worker_merge_sums_exactly() {
        // The parallel-reader discipline: each worker records into a local
        // IoStats and merges once; concurrent merges must sum exactly.
        let shared = std::sync::Arc::new(IoStats::new());
        std::thread::scope(|scope| {
            for w in 0..8u64 {
                let shared = std::sync::Arc::clone(&shared);
                scope.spawn(move || {
                    let local = IoStats::new();
                    for i in 0..500 {
                        local.record_read(w * 1000 + i);
                    }
                    local.record_write(7);
                    shared.merge_from(&local);
                });
            }
        });
        assert_eq!(shared.reads(), 8 * 500);
        assert_eq!(shared.writes(), 8);
        let expected: u64 = (0..8u64).map(|w| (0..500).map(|i| w * 1000 + i).sum::<u64>()).sum();
        assert_eq!(shared.bytes_read(), expected);
        assert_eq!(shared.bytes_written(), 8 * 7);
    }

    #[test]
    fn batch_depth_accumulates_and_resets() {
        let s = IoStats::new();
        assert_eq!(s.mean_depth(), 0.0, "no batches yet");
        s.record_batch(4);
        s.record_batch(8);
        s.record_batch(2);
        s.record_completions(14);
        assert_eq!(s.submissions(), 3);
        assert_eq!(s.completions(), 14);
        assert_eq!(s.max_depth(), 8);
        assert!((s.mean_depth() - 14.0 / 3.0).abs() < 1e-9);
        s.reset();
        assert_eq!(s.submissions(), 0);
        assert_eq!(s.completions(), 0);
        assert_eq!(s.max_depth(), 0);
        assert_eq!(s.mean_depth(), 0.0);
    }

    #[test]
    fn per_worker_batch_merge_sums_exactly() {
        // The batch-depth counters obey the same per-worker merge
        // discipline as reads/writes: every worker records into a local
        // IoStats and merges once, and concurrent merges must sum exactly
        // (max_depth takes the max over workers instead).
        let shared = std::sync::Arc::new(IoStats::new());
        std::thread::scope(|scope| {
            for w in 0..8u64 {
                let shared = std::sync::Arc::clone(&shared);
                scope.spawn(move || {
                    let local = IoStats::new();
                    for i in 0..100 {
                        local.record_batch(w + 1 + (i % 3));
                        local.record_completions(w + 1 + (i % 3));
                    }
                    shared.merge_from(&local);
                });
            }
        });
        assert_eq!(shared.submissions(), 8 * 100);
        let expected: u64 =
            (0..8u64).map(|w| (0..100u64).map(|i| w + 1 + (i % 3)).sum::<u64>()).sum();
        assert_eq!(shared.completions(), expected);
        // Deepest batch across all workers: w = 7, i % 3 = 2 → 10.
        assert_eq!(shared.max_depth(), 10);
        assert!((shared.mean_depth() - expected as f64 / 800.0).abs() < 1e-9);
    }

    #[test]
    fn serve_counters_accumulate_merge_and_reset() {
        let s = ServeStats::new();
        s.record_accepted();
        s.record_accepted();
        s.record_shed();
        s.record_killed_malformed();
        s.record_timed_out();
        s.record_frames_in(10);
        s.record_frames_out(7);
        assert_eq!((s.accepted(), s.shed(), s.killed_malformed(), s.timed_out()), (2, 1, 1, 1));
        assert_eq!((s.frames_in(), s.frames_out()), (10, 7));
        assert_eq!(
            s.to_string(),
            "accepted=2 shed=1 killed_malformed=1 timed_out=1 frames_in=10 frames_out=7"
        );
        let t = ServeStats::new();
        t.record_shed();
        t.merge_from(&s);
        assert_eq!((t.accepted(), t.shed()), (2, 2));
        assert_eq!((t.frames_in(), t.frames_out()), (10, 7));
        t.reset();
        assert_eq!((t.accepted(), t.shed(), t.killed_malformed(), t.timed_out()), (0, 0, 0, 0));
        assert_eq!((t.frames_in(), t.frames_out()), (0, 0));
    }

    #[test]
    fn serve_per_connection_merge_sums_exactly() {
        // Per-connection ServeStats merged once at connection end must sum
        // exactly under concurrency — the daemon's `--stats` totals are
        // only trustworthy if no frame is lost or double-counted.
        let shared = std::sync::Arc::new(ServeStats::new());
        std::thread::scope(|scope| {
            for w in 0..8u64 {
                let shared = std::sync::Arc::clone(&shared);
                scope.spawn(move || {
                    let local = ServeStats::new();
                    local.record_accepted();
                    for i in 0..500 {
                        local.record_frames_in(w + i);
                        local.record_frames_out(1);
                    }
                    if w % 2 == 0 {
                        local.record_killed_malformed();
                    } else {
                        local.record_timed_out();
                    }
                    shared.merge_from(&local);
                });
            }
        });
        assert_eq!(shared.accepted(), 8);
        assert_eq!(shared.killed_malformed(), 4);
        assert_eq!(shared.timed_out(), 4);
        let expected: u64 = (0..8u64).map(|w| (0..500u64).map(|i| w + i).sum::<u64>()).sum();
        assert_eq!(shared.frames_in(), expected);
        assert_eq!(shared.frames_out(), 8 * 500);
    }

    #[test]
    fn concurrent_updates_all_counted() {
        let s = std::sync::Arc::new(IoStats::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.record_read(1);
                    }
                });
            }
        });
        assert_eq!(s.reads(), 8000);
        assert_eq!(s.bytes_read(), 8000);
    }
}
