//! Binary on-disk stream format.
//!
//! The evaluation streams are large (Figure 10: up to 1.8·10^10 updates at
//! full scale); regenerating them for every run would dominate benchmarks, so
//! streams are materialized once and replayed from disk through buffered I/O
//! (per the performance-book guidance: one syscall per block, not per
//! record).
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   [u8; 4] = b"GZS1"
//! nodes   u64     — vertex universe size
//! count   u64     — number of updates
//! records count × { u: u32, v: u32, kind: u8 }   (9 bytes each)
//! ```

use crate::update::{EdgeUpdate, UpdateKind};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: [u8; 4] = *b"GZS1";
const RECORD_BYTES: usize = 9;

/// Metadata read from a stream file header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHeader {
    /// Vertex universe size.
    pub num_vertices: u64,
    /// Number of updates in the file.
    pub num_updates: u64,
}

/// Write a stream to `path`.
pub fn write_stream(path: &Path, num_vertices: u64, updates: &[EdgeUpdate]) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::with_capacity(1 << 20, file);
    w.write_all(&MAGIC)?;
    w.write_all(&num_vertices.to_le_bytes())?;
    w.write_all(&(updates.len() as u64).to_le_bytes())?;
    for u in updates {
        w.write_all(&u.u.to_le_bytes())?;
        w.write_all(&u.v.to_le_bytes())?;
        w.write_all(&[u.kind.to_byte()])?;
    }
    w.flush()
}

/// Incremental stream writer: records are appended one batch at a time and
/// the header's count is fixed up on close — the path used when streams are
/// produced by generators too large to hold in memory.
pub struct StreamWriter {
    writer: BufWriter<File>,
    num_vertices: u64,
    written: u64,
}

impl StreamWriter {
    /// Create a stream file with a placeholder count.
    pub fn create(path: &Path, num_vertices: u64) -> io::Result<Self> {
        let file = File::create(path)?;
        let mut writer = BufWriter::with_capacity(1 << 20, file);
        writer.write_all(&MAGIC)?;
        writer.write_all(&num_vertices.to_le_bytes())?;
        writer.write_all(&0u64.to_le_bytes())?; // fixed up in finish()
        Ok(StreamWriter { writer, num_vertices, written: 0 })
    }

    /// Append one update.
    pub fn write(&mut self, update: &EdgeUpdate) -> io::Result<()> {
        self.writer.write_all(&update.u.to_le_bytes())?;
        self.writer.write_all(&update.v.to_le_bytes())?;
        self.writer.write_all(&[update.kind.to_byte()])?;
        self.written += 1;
        Ok(())
    }

    /// Append many updates.
    pub fn write_all(&mut self, updates: &[EdgeUpdate]) -> io::Result<()> {
        for u in updates {
            self.write(u)?;
        }
        Ok(())
    }

    /// Flush, rewrite the header count, and return the final header.
    pub fn finish(mut self) -> io::Result<StreamHeader> {
        use std::io::{Seek, SeekFrom};
        self.writer.flush()?;
        let mut file = self.writer.into_inner().map_err(|e| e.into_error())?;
        file.seek(SeekFrom::Start(12))?; // magic(4) + nodes(8)
        file.write_all(&self.written.to_le_bytes())?;
        file.flush()?;
        Ok(StreamHeader { num_vertices: self.num_vertices, num_updates: self.written })
    }
}

/// Streaming reader over a stream file: an iterator of updates.
pub struct StreamReader {
    reader: BufReader<File>,
    header: StreamHeader,
    read_so_far: u64,
}

impl StreamReader {
    /// Open a stream file and parse its header.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        let mut reader = BufReader::with_capacity(1 << 20, file);
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        let mut buf = [0u8; 8];
        reader.read_exact(&mut buf)?;
        let num_vertices = u64::from_le_bytes(buf);
        reader.read_exact(&mut buf)?;
        let num_updates = u64::from_le_bytes(buf);
        Ok(StreamReader {
            reader,
            header: StreamHeader { num_vertices, num_updates },
            read_so_far: 0,
        })
    }

    /// The file header.
    pub fn header(&self) -> StreamHeader {
        self.header
    }

    /// Read the next batch of at most `max` updates into `out` (cleared
    /// first). Returns the number read; 0 at end of stream.
    pub fn read_batch(&mut self, out: &mut Vec<EdgeUpdate>, max: usize) -> io::Result<usize> {
        out.clear();
        let remaining = (self.header.num_updates - self.read_so_far) as usize;
        let want = remaining.min(max);
        let mut buf = vec![0u8; want * RECORD_BYTES];
        self.reader.read_exact(&mut buf)?;
        for rec in buf.chunks_exact(RECORD_BYTES) {
            let u = u32::from_le_bytes(rec[0..4].try_into().unwrap());
            let v = u32::from_le_bytes(rec[4..8].try_into().unwrap());
            let kind = UpdateKind::from_byte(rec[8])
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad update kind"))?;
            out.push(EdgeUpdate { u, v, kind });
        }
        self.read_so_far += want as u64;
        Ok(want)
    }

    /// Read the entire remaining stream into memory.
    pub fn read_all(&mut self) -> io::Result<Vec<EdgeUpdate>> {
        let mut all = Vec::with_capacity((self.header.num_updates - self.read_so_far) as usize);
        let mut batch = Vec::new();
        loop {
            let n = self.read_batch(&mut batch, 1 << 16)?;
            if n == 0 {
                break;
            }
            all.extend_from_slice(&batch);
        }
        Ok(all)
    }
}

impl Iterator for StreamReader {
    type Item = io::Result<EdgeUpdate>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.read_so_far >= self.header.num_updates {
            return None;
        }
        let mut rec = [0u8; RECORD_BYTES];
        if let Err(e) = self.reader.read_exact(&mut rec) {
            return Some(Err(e));
        }
        self.read_so_far += 1;
        let u = u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let v = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        match UpdateKind::from_byte(rec[8]) {
            Some(kind) => Some(Ok(EdgeUpdate { u, v, kind })),
            None => Some(Err(io::Error::new(io::ErrorKind::InvalidData, "bad update kind"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> gz_testutil::TempPath {
        gz_testutil::TempPath::new(&format!("gz-stream-fmt-{name}"), ".gzs")
    }

    fn sample_updates() -> Vec<EdgeUpdate> {
        vec![
            EdgeUpdate::insert(0, 1),
            EdgeUpdate::insert(2, 3),
            EdgeUpdate::delete(0, 1),
            EdgeUpdate::insert(1, 4),
        ]
    }

    #[test]
    fn round_trip_via_read_all() {
        let path = tmp("round_trip");
        let updates = sample_updates();
        write_stream(path.path(), 5, &updates).unwrap();
        let mut r = StreamReader::open(path.path()).unwrap();
        assert_eq!(r.header(), StreamHeader { num_vertices: 5, num_updates: 4 });
        assert_eq!(r.read_all().unwrap(), updates);
    }

    #[test]
    fn round_trip_via_iterator() {
        let path = tmp("iter");
        let updates = sample_updates();
        write_stream(path.path(), 5, &updates).unwrap();
        let r = StreamReader::open(path.path()).unwrap();
        let got: Vec<EdgeUpdate> = r.map(|x| x.unwrap()).collect();
        assert_eq!(got, updates);
    }

    #[test]
    fn batched_reads_respect_limits() {
        let path = tmp("batched");
        let updates: Vec<EdgeUpdate> = (0..100u32).map(|i| EdgeUpdate::insert(i, i + 1)).collect();
        write_stream(path.path(), 200, &updates).unwrap();
        let mut r = StreamReader::open(path.path()).unwrap();
        let mut batch = Vec::new();
        let mut total = 0;
        loop {
            let n = r.read_batch(&mut batch, 7).unwrap();
            if n == 0 {
                break;
            }
            assert!(n <= 7);
            total += n;
        }
        assert_eq!(total, 100);
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("bad_magic");
        std::fs::write(path.path(), b"NOPE0000000000000000").unwrap();
        assert!(StreamReader::open(path.path()).is_err());
    }

    #[test]
    fn empty_stream() {
        let path = tmp("empty");
        write_stream(path.path(), 10, &[]).unwrap();
        let mut r = StreamReader::open(path.path()).unwrap();
        assert_eq!(r.read_all().unwrap(), vec![]);
    }

    #[test]
    fn incremental_writer_matches_one_shot() {
        let (p1, p2) = (tmp("inc_a"), tmp("inc_b"));
        let updates = sample_updates();
        write_stream(p1.path(), 5, &updates).unwrap();
        let mut w = StreamWriter::create(p2.path(), 5).unwrap();
        w.write(&updates[0]).unwrap();
        w.write_all(&updates[1..]).unwrap();
        let header = w.finish().unwrap();
        assert_eq!(header, StreamHeader { num_vertices: 5, num_updates: 4 });
        assert_eq!(std::fs::read(p1.path()).unwrap(), std::fs::read(p2.path()).unwrap());
    }

    #[test]
    fn incremental_writer_fixes_header_count() {
        let path = tmp("inc_count");
        let mut w = StreamWriter::create(path.path(), 9).unwrap();
        for i in 0..37u32 {
            w.write(&EdgeUpdate::insert(i % 8, i % 8 + 1)).unwrap();
        }
        let header = w.finish().unwrap();
        assert_eq!(header.num_updates, 37);
        let r = StreamReader::open(path.path()).unwrap();
        assert_eq!(r.header().num_updates, 37);
        assert_eq!(r.count(), 37);
    }
}
