//! The shard wire protocol: framed, versioned messages between the
//! coordinator and its shard workers.
//!
//! The paper's §8 outlook — partitioning sketches "throughout a distributed
//! cluster without sacrificing stream ingestion rate" — only holds when the
//! coordinator ships *batches*, not individual updates (per-update routing
//! pays a round trip per stream element; see *Exploring the Landscape of
//! Distributed Graph Sketching*). This module defines the messages that
//! cross the coordinator/shard boundary; it is deliberately sketch-agnostic
//! (gathered sketches travel as opaque bytes) so the transport layer never
//! depends on sketch internals.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! magic   [u8; 2] = b"GZ"
//! version u8      = 1
//! tag     u8      — message discriminant
//! len     u32     — payload length in bytes
//! payload len bytes
//! ```
//!
//! The protocol is strictly request/reply from the coordinator's side:
//! `Hello` expects `HelloAck`, `Flush` expects `FlushAck`, `GatherSketches`
//! expects `Sketches`, `GatherRound` expects `RoundSketches`; `Batch` and
//! `Shutdown` are one-way.
//!
//! Since v7 the same framing also carries the *front-door* dialect spoken
//! between `gz serve` and its clients: `ClientHello` expects
//! `ClientHelloAck`, `UpdateBatch` expects `UpdateAck`, `Query` expects
//! `QueryResult`; `Busy` and `ErrorReply` are server-initiated terminal
//! replies (overload shedding and the malformed-frame kill, respectively).

use std::io::{self, Read, Write};

/// Frame magic.
pub const WIRE_MAGIC: [u8; 2] = *b"GZ";

/// Protocol version carried in every frame. Bump on any layout change —
/// or any change to the sketch bytes the frames carry: shards XOR-merge
/// gathered sketches, so a coordinator and worker disagreeing on the hash
/// derivation must fail the handshake, not corrupt state.
/// v2 added the round-sliced gather (`GatherRound` / `RoundSketches`);
/// v3 marks the single-hash column derivation (DESIGN.md §9), which makes
/// sketch payloads unmergeable with v2 builds;
/// v4 added epoch sealing (`SealEpoch` / `EpochSealed` / `ReleaseEpoch` /
/// `EpochReleased`) and the epoch tag on `GatherRound`, so sharded queries
/// can gather a consistent cut while ingestion continues;
/// v5 added the hybrid-representation tag byte on `RoundSketches` entries:
/// each entry's bytes now start with `0` (a dense round slice follows) or
/// `1` (a sparse exact neighbor-set follows — count + sorted u32 ids — that
/// the coordinator replays into the round slice), so shards never densify
/// sub-threshold nodes just to answer a gather;
/// v6 added the fault-tolerance frames: `CheckpointShard` / `CheckpointAck`
/// (persist the shard's owned state, acknowledging with the durable batch
/// sequence number) and `Resync` / `ResyncFrom` (a restarted worker reports
/// the sequence number its restored state covers, so the coordinator
/// replays exactly the un-checkpointed tail);
/// v7 added the front-door frames spoken by `gz serve` clients:
/// `ClientHello` / `ClientHelloAck` (the daemon handshake, announcing the
/// universe size and the durably acked update count), `UpdateBatch` /
/// `UpdateAck` (edge updates in, durable-prefix acknowledgements out),
/// `Query` / `QueryResult` (connectivity questions answered from a sealed
/// epoch), `Busy` (typed overload shedding at admission) and `ErrorReply`
/// (the typed last word before the daemon kills a misbehaving connection).
pub const PROTOCOL_VERSION: u8 = 7;

/// Upper bound on a frame payload (defensive: a corrupt length header must
/// not trigger a multi-gigabyte allocation).
pub const MAX_PAYLOAD_BYTES: usize = 1 << 28;

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_BATCH: u8 = 3;
const TAG_FLUSH: u8 = 4;
const TAG_FLUSH_ACK: u8 = 5;
const TAG_GATHER: u8 = 6;
const TAG_SKETCHES: u8 = 7;
const TAG_SHUTDOWN: u8 = 8;
const TAG_GATHER_ROUND: u8 = 9;
const TAG_ROUND_SKETCHES: u8 = 10;
const TAG_SEAL_EPOCH: u8 = 11;
const TAG_EPOCH_SEALED: u8 = 12;
const TAG_RELEASE_EPOCH: u8 = 13;
const TAG_EPOCH_RELEASED: u8 = 14;
const TAG_CHECKPOINT_SHARD: u8 = 15;
const TAG_CHECKPOINT_ACK: u8 = 16;
const TAG_RESYNC: u8 = 17;
const TAG_RESYNC_FROM: u8 = 18;
const TAG_CLIENT_HELLO: u8 = 19;
const TAG_CLIENT_HELLO_ACK: u8 = 20;
const TAG_UPDATE_BATCH: u8 = 21;
const TAG_UPDATE_ACK: u8 = 22;
const TAG_QUERY: u8 = 23;
const TAG_QUERY_RESULT: u8 = 24;
const TAG_BUSY: u8 = 25;
const TAG_ERROR_REPLY: u8 = 26;

/// On-wire sentinel for "no epoch" in [`WireMessage::GatherRound`]: the
/// gather reads the live (flushed) state, the pre-v4 behavior.
const EPOCH_LIVE: u64 = u64::MAX;

/// One serialized node sketch, as gathered from a shard: the owning node id
/// plus the sketch's serialized bytes (opaque at this layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchEntry {
    /// Graph node the sketch belongs to.
    pub node: u32,
    /// Serialized sketch payload.
    pub bytes: Vec<u8>,
}

/// One edge update as a front-door client ships it: the two endpoints plus
/// the insert/delete flag. Kept explicit (9 bytes on the wire) rather than
/// bit-packed — the serve daemon validates endpoints against its universe
/// before anything touches a sketch, so the codec carries exactly what the
/// client said.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireUpdate {
    /// First endpoint.
    pub u: u32,
    /// Second endpoint.
    pub v: u32,
    /// `true` for a deletion, `false` for an insertion.
    pub is_delete: bool,
}

/// What a front-door [`WireMessage::Query`] asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// The number of connected components.
    NumComponents,
    /// The full per-vertex component labeling.
    Components,
    /// The spanning forest witnessing the components.
    SpanningForest,
}

impl QueryKind {
    fn code(self) -> u8 {
        match self {
            QueryKind::NumComponents => 0,
            QueryKind::Components => 1,
            QueryKind::SpanningForest => 2,
        }
    }

    fn from_code(code: u8) -> io::Result<QueryKind> {
        match code {
            0 => Ok(QueryKind::NumComponents),
            1 => Ok(QueryKind::Components),
            2 => Ok(QueryKind::SpanningForest),
            other => Err(invalid(format!("unknown query kind {other}"))),
        }
    }
}

/// The answer inside a [`WireMessage::QueryResult`], mirroring
/// [`QueryKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryAnswer {
    /// Number of connected components.
    NumComponents(u64),
    /// Component label per vertex, indexed by vertex id.
    Components(Vec<u32>),
    /// Spanning-forest edges as `(u, v)` pairs.
    SpanningForest(Vec<(u32, u32)>),
}

/// A message of the coordinator ↔ shard-worker protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMessage {
    /// Coordinator → worker: opening handshake. `params_digest` commits to
    /// the sketch parameters (universe size, rounds, columns, seed, shard
    /// count); a worker built from different parameters must refuse, since
    /// its sketches would not be mergeable with the other shards'.
    Hello {
        /// Digest of the shared sketch parameters.
        params_digest: u64,
    },
    /// Worker → coordinator: handshake accepted; echoes the digest.
    HelloAck {
        /// The worker's own parameter digest.
        params_digest: u64,
    },
    /// Coordinator → worker: a node-keyed batch of encoded update records —
    /// the unit of inter-shard communication.
    Batch {
        /// Destination node (owned by the receiving shard).
        node: u32,
        /// Encoded `(other, is_delete)` records (see `encode_other`).
        records: Vec<u32>,
    },
    /// Coordinator → worker: apply everything received so far, then reply
    /// [`WireMessage::FlushAck`].
    Flush,
    /// Worker → coordinator: all prior batches are in the sketches.
    FlushAck,
    /// Coordinator → worker: flush, then reply [`WireMessage::Sketches`]
    /// with every owned node's serialized sketch.
    GatherSketches,
    /// Worker → coordinator: the shard's sketch state.
    Sketches {
        /// One entry per owned node.
        entries: Vec<SketchEntry>,
    },
    /// Coordinator → worker: reply [`WireMessage::RoundSketches`] with only
    /// round `round`'s slice of every owned node's sketch — the streaming
    /// query's gather unit. A Borůvka query sends one of these per round,
    /// so each reply frame is a `rounds`-fold smaller than a full
    /// [`WireMessage::Sketches`] gather and the coordinator never holds
    /// more than one round of the universe at a time. With `epoch: None`
    /// the worker flushes and serves the live state; with `Some(id)` it
    /// serves the sealed generation of a [`WireMessage::SealEpoch`] — no
    /// flush, no quiescing, consistent across all the query's rounds.
    GatherRound {
        /// Sketch round (0-based) whose column data is requested.
        round: u32,
        /// Sealed epoch to gather from (`None` = live state).
        epoch: Option<u64>,
    },
    /// Worker → coordinator: the shard's round-`round` sketch slices.
    RoundSketches {
        /// The round these slices belong to (echoes the request).
        round: u32,
        /// One entry per owned node; `bytes` is the round slice only.
        entries: Vec<SketchEntry>,
    },
    /// Coordinator → worker: seal the shard's current sketch state into an
    /// epoch (flushing first, so the sealed cut includes every batch
    /// received so far) and reply [`WireMessage::EpochSealed`] with its id.
    SealEpoch,
    /// Worker → coordinator: the epoch is sealed and pinned until a
    /// matching [`WireMessage::ReleaseEpoch`].
    EpochSealed {
        /// Shard-assigned epoch id.
        epoch: u64,
    },
    /// Coordinator → worker: drop the sealed epoch `epoch`, freeing its
    /// copy-on-write captures; replies [`WireMessage::EpochReleased`].
    /// Releasing an unknown id is not an error (release is best-effort
    /// cleanup from a dropping handle).
    ReleaseEpoch {
        /// Epoch id from [`WireMessage::EpochSealed`].
        epoch: u64,
    },
    /// Worker → coordinator: the epoch is gone.
    EpochReleased,
    /// Coordinator → worker: flush, then persist the shard's owned sketch
    /// state to the worker's checkpoint path and reply
    /// [`WireMessage::CheckpointAck`]. Sent in-stream, so the checkpoint
    /// covers exactly the batches framed before it — no separate sequence
    /// negotiation is needed on an ordered link.
    CheckpointShard,
    /// Worker → coordinator: the checkpoint is durable. `seq` is the count
    /// of [`WireMessage::Batch`] frames the worker had received when it
    /// took the checkpoint; the coordinator may prune its replay log
    /// through that point.
    CheckpointAck {
        /// Batches covered by the durable checkpoint.
        seq: u64,
    },
    /// Coordinator → worker: asks where the worker's state begins — sent
    /// after reconnecting to a restarted worker, before any replay. The
    /// worker replies [`WireMessage::ResyncFrom`].
    Resync,
    /// Worker → coordinator: the worker's state (fresh, or restored from a
    /// checkpoint) covers the first `seq` batches; the coordinator must
    /// replay batches `seq..` and nothing earlier — replaying a batch the
    /// state already absorbed would XOR it in twice and cancel it.
    ResyncFrom {
        /// Batches already reflected in the worker's sketch state.
        seq: u64,
    },
    /// Coordinator → worker: close the connection; the worker exits its
    /// event loop. On a `gz serve` connection the same frame is the
    /// client's clean goodbye — it closes that connection, never the
    /// daemon.
    Shutdown,
    /// Client → serve daemon: opening handshake of the front-door dialect.
    /// Carries nothing: unlike a shard worker, a client does not need to
    /// share sketch parameters — updates and answers are plain vertex ids.
    ClientHello,
    /// Serve daemon → client: handshake accepted. Announces the universe
    /// size (so the client can validate vertex ids locally) and the number
    /// of updates the daemon has durably acked so far — after a `--resume`
    /// restart this is where a reconnecting client learns which prefix of
    /// its stream survived.
    ClientHelloAck {
        /// Vertex universe size.
        num_nodes: u64,
        /// Updates durably acknowledged so far.
        acked: u64,
    },
    /// Client → serve daemon: a batch of edge updates to ingest. Answered
    /// with [`WireMessage::UpdateAck`] once the whole batch is durable, or
    /// [`WireMessage::ErrorReply`] (and a dead connection) if any update is
    /// malformed — a batch is applied entirely or not at all.
    UpdateBatch {
        /// The edge updates, in stream order.
        updates: Vec<WireUpdate>,
    },
    /// Serve daemon → client: every update up to and including the last
    /// [`WireMessage::UpdateBatch`] is durable and applied.
    UpdateAck {
        /// Total updates durably acknowledged on this daemon so far.
        acked: u64,
    },
    /// Client → serve daemon: a connectivity question, answered from a
    /// sealed epoch so it never stalls (or is stalled by) ingestion.
    Query {
        /// What to compute.
        kind: QueryKind,
    },
    /// Serve daemon → client: the answer to a [`WireMessage::Query`].
    QueryResult {
        /// The answer, in the shape the query kind asked for.
        answer: QueryAnswer,
    },
    /// Serve daemon → client: the daemon is at its `--max-clients` limit.
    /// Sent instead of a handshake, after which the connection closes —
    /// typed shedding, never accept-then-stall.
    Busy {
        /// Connections currently being served.
        active: u32,
        /// The configured admission limit.
        max_clients: u32,
    },
    /// Serve daemon → client: a typed description of why the daemon is
    /// about to kill this connection (malformed frame, out-of-range vertex,
    /// unexpected message). Best-effort — a client that already vanished
    /// simply misses it; the daemon keeps serving everyone else.
    ErrorReply {
        /// Human-readable reason.
        message: String,
    },
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn encode_entries(entries: &[SketchEntry], out: &mut Vec<u8>) {
    for e in entries {
        out.extend_from_slice(&e.node.to_le_bytes());
        out.extend_from_slice(&(e.bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&e.bytes);
    }
}

fn decode_entries(cur: &mut Cursor<'_>, count: usize) -> io::Result<Vec<SketchEntry>> {
    // `count` and every entry length are attacker-controlled. Each entry
    // occupies at least 8 bytes (node + length header), so a count that
    // cannot fit in the *remaining* payload is malformed — refuse it before
    // `Vec::with_capacity` turns the lie into an allocation.
    if count > cur.remaining() / 8 {
        return Err(invalid("entry count exceeds remaining payload"));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let node = cur.u32()?;
        let len = cur.u32()? as usize;
        if len > cur.remaining() {
            return Err(invalid("entry length exceeds remaining payload"));
        }
        entries.push(SketchEntry { node, bytes: cur.take(len)?.to_vec() });
    }
    Ok(entries)
}

impl WireMessage {
    fn tag(&self) -> u8 {
        match self {
            WireMessage::Hello { .. } => TAG_HELLO,
            WireMessage::HelloAck { .. } => TAG_HELLO_ACK,
            WireMessage::Batch { .. } => TAG_BATCH,
            WireMessage::Flush => TAG_FLUSH,
            WireMessage::FlushAck => TAG_FLUSH_ACK,
            WireMessage::GatherSketches => TAG_GATHER,
            WireMessage::Sketches { .. } => TAG_SKETCHES,
            WireMessage::GatherRound { .. } => TAG_GATHER_ROUND,
            WireMessage::RoundSketches { .. } => TAG_ROUND_SKETCHES,
            WireMessage::SealEpoch => TAG_SEAL_EPOCH,
            WireMessage::EpochSealed { .. } => TAG_EPOCH_SEALED,
            WireMessage::ReleaseEpoch { .. } => TAG_RELEASE_EPOCH,
            WireMessage::EpochReleased => TAG_EPOCH_RELEASED,
            WireMessage::CheckpointShard => TAG_CHECKPOINT_SHARD,
            WireMessage::CheckpointAck { .. } => TAG_CHECKPOINT_ACK,
            WireMessage::Resync => TAG_RESYNC,
            WireMessage::ResyncFrom { .. } => TAG_RESYNC_FROM,
            WireMessage::Shutdown => TAG_SHUTDOWN,
            WireMessage::ClientHello => TAG_CLIENT_HELLO,
            WireMessage::ClientHelloAck { .. } => TAG_CLIENT_HELLO_ACK,
            WireMessage::UpdateBatch { .. } => TAG_UPDATE_BATCH,
            WireMessage::UpdateAck { .. } => TAG_UPDATE_ACK,
            WireMessage::Query { .. } => TAG_QUERY,
            WireMessage::QueryResult { .. } => TAG_QUERY_RESULT,
            WireMessage::Busy { .. } => TAG_BUSY,
            WireMessage::ErrorReply { .. } => TAG_ERROR_REPLY,
        }
    }

    /// Exact payload size in bytes, computed without encoding — lets
    /// [`Self::write_to`] refuse oversized frames before building them.
    fn payload_len(&self) -> usize {
        match self {
            WireMessage::Hello { .. } | WireMessage::HelloAck { .. } => 8,
            WireMessage::Batch { records, .. } => 8 + 4 * records.len(),
            WireMessage::GatherRound { .. } => 12,
            WireMessage::EpochSealed { .. }
            | WireMessage::ReleaseEpoch { .. }
            | WireMessage::CheckpointAck { .. }
            | WireMessage::ResyncFrom { .. } => 8,
            WireMessage::Sketches { entries } => {
                4 + entries.iter().map(|e| 8 + e.bytes.len()).sum::<usize>()
            }
            WireMessage::RoundSketches { entries, .. } => {
                8 + entries.iter().map(|e| 8 + e.bytes.len()).sum::<usize>()
            }
            WireMessage::ClientHelloAck { .. } => 16,
            WireMessage::UpdateBatch { updates } => 4 + 9 * updates.len(),
            WireMessage::UpdateAck { .. } => 8,
            WireMessage::Query { .. } => 1,
            WireMessage::QueryResult { answer } => {
                1 + match answer {
                    QueryAnswer::NumComponents(_) => 8,
                    QueryAnswer::Components(labels) => 4 + 4 * labels.len(),
                    QueryAnswer::SpanningForest(edges) => 4 + 8 * edges.len(),
                }
            }
            WireMessage::Busy { .. } => 8,
            WireMessage::ErrorReply { message } => 4 + message.len(),
            WireMessage::Flush
            | WireMessage::FlushAck
            | WireMessage::GatherSketches
            | WireMessage::SealEpoch
            | WireMessage::EpochReleased
            | WireMessage::CheckpointShard
            | WireMessage::Resync
            | WireMessage::Shutdown
            | WireMessage::ClientHello => 0,
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            WireMessage::Hello { params_digest } | WireMessage::HelloAck { params_digest } => {
                out.extend_from_slice(&params_digest.to_le_bytes());
            }
            WireMessage::Batch { node, records } => {
                out.extend_from_slice(&node.to_le_bytes());
                out.extend_from_slice(&(records.len() as u32).to_le_bytes());
                for r in records {
                    out.extend_from_slice(&r.to_le_bytes());
                }
            }
            WireMessage::Sketches { entries } => {
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                encode_entries(entries, out);
            }
            WireMessage::GatherRound { round, epoch } => {
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&epoch.unwrap_or(EPOCH_LIVE).to_le_bytes());
            }
            WireMessage::EpochSealed { epoch } | WireMessage::ReleaseEpoch { epoch } => {
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            WireMessage::CheckpointAck { seq } | WireMessage::ResyncFrom { seq } => {
                out.extend_from_slice(&seq.to_le_bytes());
            }
            WireMessage::RoundSketches { round, entries } => {
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                encode_entries(entries, out);
            }
            WireMessage::ClientHelloAck { num_nodes, acked } => {
                out.extend_from_slice(&num_nodes.to_le_bytes());
                out.extend_from_slice(&acked.to_le_bytes());
            }
            WireMessage::UpdateBatch { updates } => {
                out.extend_from_slice(&(updates.len() as u32).to_le_bytes());
                for upd in updates {
                    out.extend_from_slice(&upd.u.to_le_bytes());
                    out.extend_from_slice(&upd.v.to_le_bytes());
                    out.push(upd.is_delete as u8);
                }
            }
            WireMessage::UpdateAck { acked } => {
                out.extend_from_slice(&acked.to_le_bytes());
            }
            WireMessage::Query { kind } => out.push(kind.code()),
            WireMessage::QueryResult { answer } => match answer {
                QueryAnswer::NumComponents(n) => {
                    out.push(0);
                    out.extend_from_slice(&n.to_le_bytes());
                }
                QueryAnswer::Components(labels) => {
                    out.push(1);
                    out.extend_from_slice(&(labels.len() as u32).to_le_bytes());
                    for label in labels {
                        out.extend_from_slice(&label.to_le_bytes());
                    }
                }
                QueryAnswer::SpanningForest(edges) => {
                    out.push(2);
                    out.extend_from_slice(&(edges.len() as u32).to_le_bytes());
                    for (u, v) in edges {
                        out.extend_from_slice(&u.to_le_bytes());
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            },
            WireMessage::Busy { active, max_clients } => {
                out.extend_from_slice(&active.to_le_bytes());
                out.extend_from_slice(&max_clients.to_le_bytes());
            }
            WireMessage::ErrorReply { message } => {
                out.extend_from_slice(&(message.len() as u32).to_le_bytes());
                out.extend_from_slice(message.as_bytes());
            }
            WireMessage::Flush
            | WireMessage::FlushAck
            | WireMessage::GatherSketches
            | WireMessage::SealEpoch
            | WireMessage::EpochReleased
            | WireMessage::CheckpointShard
            | WireMessage::Resync
            | WireMessage::Shutdown
            | WireMessage::ClientHello => {}
        }
    }

    /// Serialize the message as one frame into `w`. A message is written
    /// with a single `write_all` so transports need no additional buffering
    /// to avoid per-field syscalls.
    ///
    /// A payload over [`MAX_PAYLOAD_BYTES`] is refused *before* anything is
    /// written: the peer would reject it anyway, and past `u32::MAX` the
    /// length header would silently truncate and desynchronize the stream.
    /// (Gathers from universes big enough to hit the cap need a chunked
    /// `Sketches` reply — not implemented yet.)
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let payload_len = self.payload_len();
        if payload_len > MAX_PAYLOAD_BYTES {
            return Err(invalid(format!(
                "{} payload of {payload_len} bytes exceeds the frame cap",
                self.name()
            )));
        }
        let mut frame = Vec::with_capacity(8 + payload_len);
        frame.extend_from_slice(&WIRE_MAGIC);
        frame.push(PROTOCOL_VERSION);
        frame.push(self.tag());
        frame.extend_from_slice(&(payload_len as u32).to_le_bytes());
        self.encode_payload(&mut frame);
        debug_assert_eq!(frame.len(), 8 + payload_len);
        w.write_all(&frame)
    }

    /// Read one frame from `r` and decode it. Returns `InvalidData` on a
    /// bad magic, unsupported version, unknown tag, oversized payload, or a
    /// payload that does not parse exactly.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<WireMessage> {
        let mut header = [0u8; 8];
        r.read_exact(&mut header)?;
        if header[0..2] != WIRE_MAGIC {
            return Err(invalid("bad wire magic"));
        }
        if header[2] != PROTOCOL_VERSION {
            return Err(invalid(format!(
                "protocol version mismatch: got {}, want {PROTOCOL_VERSION}",
                header[2]
            )));
        }
        let tag = header[3];
        let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
        if len > MAX_PAYLOAD_BYTES {
            return Err(invalid(format!("payload of {len} bytes exceeds the frame cap")));
        }
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload)?;
        Self::decode(tag, &payload)
    }

    fn decode(tag: u8, payload: &[u8]) -> io::Result<WireMessage> {
        let mut cur = Cursor { bytes: payload, at: 0 };
        let msg = match tag {
            TAG_HELLO => WireMessage::Hello { params_digest: cur.u64()? },
            TAG_HELLO_ACK => WireMessage::HelloAck { params_digest: cur.u64()? },
            TAG_BATCH => {
                let node = cur.u32()?;
                let count = cur.u32()? as usize;
                // Count capped against the bytes actually *remaining* (not
                // the whole payload, which would let the already-consumed
                // header inflate the bound): records are 4 bytes each.
                if count > cur.remaining() / 4 {
                    return Err(invalid("batch record count exceeds remaining payload"));
                }
                let records = (0..count).map(|_| cur.u32()).collect::<io::Result<Vec<u32>>>()?;
                WireMessage::Batch { node, records }
            }
            TAG_FLUSH => WireMessage::Flush,
            TAG_FLUSH_ACK => WireMessage::FlushAck,
            TAG_GATHER => WireMessage::GatherSketches,
            TAG_SKETCHES => {
                let count = cur.u32()? as usize;
                WireMessage::Sketches { entries: decode_entries(&mut cur, count)? }
            }
            TAG_GATHER_ROUND => {
                let round = cur.u32()?;
                let epoch = match cur.u64()? {
                    EPOCH_LIVE => None,
                    id => Some(id),
                };
                WireMessage::GatherRound { round, epoch }
            }
            TAG_ROUND_SKETCHES => {
                let round = cur.u32()?;
                let count = cur.u32()? as usize;
                WireMessage::RoundSketches { round, entries: decode_entries(&mut cur, count)? }
            }
            TAG_SEAL_EPOCH => WireMessage::SealEpoch,
            TAG_EPOCH_SEALED => WireMessage::EpochSealed { epoch: cur.u64()? },
            TAG_RELEASE_EPOCH => WireMessage::ReleaseEpoch { epoch: cur.u64()? },
            TAG_EPOCH_RELEASED => WireMessage::EpochReleased,
            TAG_CHECKPOINT_SHARD => WireMessage::CheckpointShard,
            TAG_CHECKPOINT_ACK => WireMessage::CheckpointAck { seq: cur.u64()? },
            TAG_RESYNC => WireMessage::Resync,
            TAG_RESYNC_FROM => WireMessage::ResyncFrom { seq: cur.u64()? },
            TAG_SHUTDOWN => WireMessage::Shutdown,
            TAG_CLIENT_HELLO => WireMessage::ClientHello,
            TAG_CLIENT_HELLO_ACK => {
                WireMessage::ClientHelloAck { num_nodes: cur.u64()?, acked: cur.u64()? }
            }
            TAG_UPDATE_BATCH => {
                let count = cur.u32()? as usize;
                // Updates are 9 bytes each; a count the remaining payload
                // cannot hold is a lie — refuse before allocating.
                if count > cur.remaining() / 9 {
                    return Err(invalid("update count exceeds remaining payload"));
                }
                let mut updates = Vec::with_capacity(count);
                for _ in 0..count {
                    let u = cur.u32()?;
                    let v = cur.u32()?;
                    let is_delete = match cur.take(1)?[0] {
                        0 => false,
                        1 => true,
                        flag => return Err(invalid(format!("bad update flag {flag}"))),
                    };
                    updates.push(WireUpdate { u, v, is_delete });
                }
                WireMessage::UpdateBatch { updates }
            }
            TAG_UPDATE_ACK => WireMessage::UpdateAck { acked: cur.u64()? },
            TAG_QUERY => WireMessage::Query { kind: QueryKind::from_code(cur.take(1)?[0])? },
            TAG_QUERY_RESULT => {
                let answer = match cur.take(1)?[0] {
                    0 => QueryAnswer::NumComponents(cur.u64()?),
                    1 => {
                        let count = cur.u32()? as usize;
                        if count > cur.remaining() / 4 {
                            return Err(invalid("label count exceeds remaining payload"));
                        }
                        let labels =
                            (0..count).map(|_| cur.u32()).collect::<io::Result<Vec<u32>>>()?;
                        QueryAnswer::Components(labels)
                    }
                    2 => {
                        let count = cur.u32()? as usize;
                        if count > cur.remaining() / 8 {
                            return Err(invalid("edge count exceeds remaining payload"));
                        }
                        let edges = (0..count)
                            .map(|_| Ok((cur.u32()?, cur.u32()?)))
                            .collect::<io::Result<Vec<(u32, u32)>>>()?;
                        QueryAnswer::SpanningForest(edges)
                    }
                    other => return Err(invalid(format!("unknown query answer kind {other}"))),
                };
                WireMessage::QueryResult { answer }
            }
            TAG_BUSY => WireMessage::Busy { active: cur.u32()?, max_clients: cur.u32()? },
            TAG_ERROR_REPLY => {
                let len = cur.u32()? as usize;
                if len > cur.remaining() {
                    return Err(invalid("error message length exceeds remaining payload"));
                }
                let message = String::from_utf8(cur.take(len)?.to_vec())
                    .map_err(|_| invalid("error message is not valid UTF-8"))?;
                WireMessage::ErrorReply { message }
            }
            other => return Err(invalid(format!("unknown message tag {other}"))),
        };
        if cur.at != payload.len() {
            return Err(invalid("trailing bytes after message payload"));
        }
        Ok(msg)
    }

    /// Human-readable message name (for protocol-error diagnostics).
    pub fn name(&self) -> &'static str {
        match self {
            WireMessage::Hello { .. } => "Hello",
            WireMessage::HelloAck { .. } => "HelloAck",
            WireMessage::Batch { .. } => "Batch",
            WireMessage::Flush => "Flush",
            WireMessage::FlushAck => "FlushAck",
            WireMessage::GatherSketches => "GatherSketches",
            WireMessage::Sketches { .. } => "Sketches",
            WireMessage::GatherRound { .. } => "GatherRound",
            WireMessage::RoundSketches { .. } => "RoundSketches",
            WireMessage::SealEpoch => "SealEpoch",
            WireMessage::EpochSealed { .. } => "EpochSealed",
            WireMessage::ReleaseEpoch { .. } => "ReleaseEpoch",
            WireMessage::EpochReleased => "EpochReleased",
            WireMessage::CheckpointShard => "CheckpointShard",
            WireMessage::CheckpointAck { .. } => "CheckpointAck",
            WireMessage::Resync => "Resync",
            WireMessage::ResyncFrom { .. } => "ResyncFrom",
            WireMessage::Shutdown => "Shutdown",
            WireMessage::ClientHello => "ClientHello",
            WireMessage::ClientHelloAck { .. } => "ClientHelloAck",
            WireMessage::UpdateBatch { .. } => "UpdateBatch",
            WireMessage::UpdateAck { .. } => "UpdateAck",
            WireMessage::Query { .. } => "Query",
            WireMessage::QueryResult { .. } => "QueryResult",
            WireMessage::Busy { .. } => "Busy",
            WireMessage::ErrorReply { .. } => "ErrorReply",
        }
    }
}

/// Minimal bounds-checked reader over a payload slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    /// Bytes not yet consumed — the budget any trusted-from-the-wire count
    /// or length must fit in.
    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.at..end];
                self.at = end;
                Ok(s)
            }
            None => Err(invalid("truncated message payload")),
        }
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: WireMessage) -> WireMessage {
        let mut buf = Vec::new();
        msg.write_to(&mut buf).unwrap();
        let mut r = &buf[..];
        let got = WireMessage::read_from(&mut r).unwrap();
        assert!(r.is_empty(), "frame must consume exactly");
        got
    }

    #[test]
    fn all_variants_round_trip() {
        let msgs = vec![
            WireMessage::Hello { params_digest: 0xDEAD_BEEF_0BAD_F00D },
            WireMessage::HelloAck { params_digest: 7 },
            WireMessage::Batch { node: 42, records: vec![1, 2, 3, u32::MAX] },
            WireMessage::Batch { node: 0, records: vec![] },
            WireMessage::Flush,
            WireMessage::FlushAck,
            WireMessage::GatherSketches,
            WireMessage::Sketches {
                entries: vec![
                    SketchEntry { node: 3, bytes: vec![9, 8, 7] },
                    SketchEntry { node: 10, bytes: vec![] },
                ],
            },
            WireMessage::GatherRound { round: 11, epoch: None },
            WireMessage::GatherRound { round: 3, epoch: Some(17) },
            WireMessage::RoundSketches {
                round: 11,
                entries: vec![
                    SketchEntry { node: 1, bytes: vec![4, 5] },
                    SketchEntry { node: 4, bytes: vec![] },
                ],
            },
            WireMessage::SealEpoch,
            WireMessage::EpochSealed { epoch: 0 },
            WireMessage::EpochSealed { epoch: u64::MAX - 1 },
            WireMessage::ReleaseEpoch { epoch: 42 },
            WireMessage::EpochReleased,
            WireMessage::CheckpointShard,
            WireMessage::CheckpointAck { seq: 0 },
            WireMessage::CheckpointAck { seq: u64::MAX },
            WireMessage::Resync,
            WireMessage::ResyncFrom { seq: 12345 },
            WireMessage::Shutdown,
            WireMessage::ClientHello,
            WireMessage::ClientHelloAck { num_nodes: 1 << 40, acked: u64::MAX },
            WireMessage::UpdateBatch {
                updates: vec![
                    WireUpdate { u: 0, v: u32::MAX, is_delete: false },
                    WireUpdate { u: 7, v: 9, is_delete: true },
                ],
            },
            WireMessage::UpdateBatch { updates: vec![] },
            WireMessage::UpdateAck { acked: 0 },
            WireMessage::UpdateAck { acked: u64::MAX },
            WireMessage::Query { kind: QueryKind::NumComponents },
            WireMessage::Query { kind: QueryKind::Components },
            WireMessage::Query { kind: QueryKind::SpanningForest },
            WireMessage::QueryResult { answer: QueryAnswer::NumComponents(3) },
            WireMessage::QueryResult { answer: QueryAnswer::Components(vec![0, 0, 2, 2]) },
            WireMessage::QueryResult { answer: QueryAnswer::Components(vec![]) },
            WireMessage::QueryResult { answer: QueryAnswer::SpanningForest(vec![(0, 1), (1, 2)]) },
            WireMessage::QueryResult { answer: QueryAnswer::SpanningForest(vec![]) },
            WireMessage::Busy { active: 64, max_clients: 64 },
            WireMessage::ErrorReply { message: "vertex 9 out of range".to_string() },
            WireMessage::ErrorReply { message: String::new() },
        ];
        for msg in msgs {
            assert_eq!(round_trip(msg.clone()), msg, "{}", msg.name());
        }
    }

    #[test]
    fn messages_stream_back_to_back() {
        let mut buf = Vec::new();
        WireMessage::Hello { params_digest: 1 }.write_to(&mut buf).unwrap();
        WireMessage::Batch { node: 5, records: vec![6] }.write_to(&mut buf).unwrap();
        WireMessage::Shutdown.write_to(&mut buf).unwrap();
        let mut r = &buf[..];
        assert_eq!(
            WireMessage::read_from(&mut r).unwrap(),
            WireMessage::Hello { params_digest: 1 }
        );
        assert_eq!(
            WireMessage::read_from(&mut r).unwrap(),
            WireMessage::Batch { node: 5, records: vec![6] }
        );
        assert_eq!(WireMessage::read_from(&mut r).unwrap(), WireMessage::Shutdown);
        assert!(r.is_empty());
    }

    #[test]
    fn rejects_bad_magic_version_and_tag() {
        let mut buf = Vec::new();
        WireMessage::Flush.write_to(&mut buf).unwrap();

        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(WireMessage::read_from(&mut &bad_magic[..]).is_err());

        let mut bad_version = buf.clone();
        bad_version[2] = PROTOCOL_VERSION + 1;
        assert!(WireMessage::read_from(&mut &bad_version[..]).is_err());

        let mut bad_tag = buf.clone();
        bad_tag[3] = 200;
        assert!(WireMessage::read_from(&mut &bad_tag[..]).is_err());
    }

    #[test]
    fn rejects_truncated_and_oversized_frames() {
        let mut buf = Vec::new();
        WireMessage::Batch { node: 1, records: vec![2, 3] }.write_to(&mut buf).unwrap();
        // Truncate mid-payload.
        let cut = &buf[..buf.len() - 3];
        assert!(WireMessage::read_from(&mut &cut[..]).is_err());

        // A length header promising more than the cap must be refused
        // before any allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&WIRE_MAGIC);
        huge.push(PROTOCOL_VERSION);
        huge.push(4); // Flush
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(WireMessage::read_from(&mut &huge[..]).is_err());
    }

    #[test]
    fn rejects_trailing_garbage_in_payload() {
        // A Flush frame with a nonempty payload is malformed.
        let mut buf = Vec::new();
        buf.extend_from_slice(&WIRE_MAGIC);
        buf.push(PROTOCOL_VERSION);
        buf.push(4);
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0, 0]);
        assert!(WireMessage::read_from(&mut &buf[..]).is_err());
    }

    #[test]
    fn rejects_lying_counts() {
        // Batch claiming 1000 records but carrying none.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes()); // node
        payload.extend_from_slice(&1000u32.to_le_bytes()); // count
        let mut buf = Vec::new();
        buf.extend_from_slice(&WIRE_MAGIC);
        buf.push(PROTOCOL_VERSION);
        buf.push(3);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&payload);
        assert!(WireMessage::read_from(&mut &buf[..]).is_err());

        // RoundSketches claiming 1000 entries but carrying none.
        let mut payload = Vec::new();
        payload.extend_from_slice(&0u32.to_le_bytes()); // round
        payload.extend_from_slice(&1000u32.to_le_bytes()); // count
        let mut buf = Vec::new();
        buf.extend_from_slice(&WIRE_MAGIC);
        buf.push(PROTOCOL_VERSION);
        buf.push(10);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&payload);
        assert!(WireMessage::read_from(&mut &buf[..]).is_err());
    }

    #[test]
    fn oversized_counts_fail_against_remaining_payload_not_oom() {
        // A count can be small enough to pass a whole-payload sanity check
        // yet still exceed what the *remaining* bytes can encode; the
        // decoder must refuse it before `Vec::with_capacity` turns an
        // attacker-controlled u32 into an allocation.
        fn frame(tag: u8, payload: &[u8]) -> Vec<u8> {
            let mut buf = Vec::new();
            buf.extend_from_slice(&WIRE_MAGIC);
            buf.push(PROTOCOL_VERSION);
            buf.push(tag);
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(payload);
            buf
        }

        // RoundSketches: 168-byte payload claims 21 entries, but after the
        // round and count headers only 160 bytes remain — room for at most
        // 20 entry headers.
        let mut payload = Vec::new();
        payload.extend_from_slice(&0u32.to_le_bytes()); // round
        payload.extend_from_slice(&21u32.to_le_bytes()); // count
        payload.resize(168, 0);
        let buf = frame(10, &payload);
        let err = WireMessage::read_from(&mut &buf[..]).unwrap_err();
        assert!(err.to_string().contains("entry count exceeds remaining payload"), "got: {err}");

        // Sketches: one entry whose length field promises u32::MAX bytes.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes()); // count
        payload.extend_from_slice(&0u32.to_le_bytes()); // node
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // entry length
        let buf = frame(7, &payload);
        let err = WireMessage::read_from(&mut &buf[..]).unwrap_err();
        assert!(err.to_string().contains("entry length exceeds remaining payload"), "got: {err}");

        // Batch: count claims more records than the remaining bytes hold.
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u32.to_le_bytes()); // node
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // count
        let buf = frame(3, &payload);
        let err = WireMessage::read_from(&mut &buf[..]).unwrap_err();
        assert!(err.to_string().contains("record count exceeds remaining payload"), "got: {err}");
    }

    #[test]
    fn refuses_to_write_oversized_frames() {
        // A frame the reader would reject must never be sent (and a payload
        // past u32::MAX must not silently truncate the length header).
        let msg = WireMessage::Sketches {
            entries: vec![SketchEntry { node: 0, bytes: vec![0u8; MAX_PAYLOAD_BYTES + 1] }],
        };
        let mut out = Vec::new();
        assert!(msg.write_to(&mut out).is_err());
        assert!(out.is_empty(), "nothing may reach the wire");
    }

    #[test]
    fn empty_batch_is_legal() {
        // The coordinator never sends these, but the codec must not choke.
        let msg = round_trip(WireMessage::Batch { node: 9, records: vec![] });
        assert_eq!(msg, WireMessage::Batch { node: 9, records: vec![] });
    }

    #[test]
    fn version_mismatch_reports_both_versions() {
        // A mixed-version fleet must be diagnosable from the error text
        // alone: both the peer's version and ours belong in the message.
        let mut buf = Vec::new();
        WireMessage::Flush.write_to(&mut buf).unwrap();
        buf[2] = PROTOCOL_VERSION + 1;
        let err = WireMessage::read_from(&mut &buf[..]).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("got {}", PROTOCOL_VERSION + 1))
                && msg.contains(&format!("want {PROTOCOL_VERSION}")),
            "got: {msg}"
        );
    }

    #[test]
    fn checkpoint_and_resync_frames_reject_malformed_payloads() {
        fn frame(tag: u8, payload: &[u8]) -> Vec<u8> {
            let mut buf = Vec::new();
            buf.extend_from_slice(&WIRE_MAGIC);
            buf.push(PROTOCOL_VERSION);
            buf.push(tag);
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(payload);
            buf
        }
        // CheckpointShard / Resync carry no payload; trailing bytes are
        // garbage.
        for tag in [15u8, 17] {
            let buf = frame(tag, &[0]);
            assert!(WireMessage::read_from(&mut &buf[..]).is_err(), "tag {tag}");
        }
        // CheckpointAck / ResyncFrom carry exactly a u64: short payloads
        // truncate, long ones trail.
        for tag in [16u8, 18] {
            let short = frame(tag, &[0u8; 4]);
            assert!(WireMessage::read_from(&mut &short[..]).is_err(), "tag {tag} short");
            let long = frame(tag, &[0u8; 12]);
            assert!(WireMessage::read_from(&mut &long[..]).is_err(), "tag {tag} long");
        }
    }

    fn serve_frame(tag: u8, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&WIRE_MAGIC);
        buf.push(PROTOCOL_VERSION);
        buf.push(tag);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(payload);
        buf
    }

    #[test]
    fn serve_frames_reject_malformed_payloads() {
        // UpdateBatch claiming more updates than the payload can hold.
        let mut payload = Vec::new();
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        let buf = serve_frame(TAG_UPDATE_BATCH, &payload);
        let err = WireMessage::read_from(&mut &buf[..]).unwrap_err();
        assert!(err.to_string().contains("update count exceeds remaining payload"), "got: {err}");

        // An is_delete flag outside {0, 1} is a malformed frame, not a bool.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.push(2);
        let buf = serve_frame(TAG_UPDATE_BATCH, &payload);
        let err = WireMessage::read_from(&mut &buf[..]).unwrap_err();
        assert!(err.to_string().contains("bad update flag"), "got: {err}");

        // Query with an unknown kind code.
        let buf = serve_frame(TAG_QUERY, &[9]);
        let err = WireMessage::read_from(&mut &buf[..]).unwrap_err();
        assert!(err.to_string().contains("unknown query kind"), "got: {err}");

        // QueryResult with an unknown answer kind.
        let buf = serve_frame(TAG_QUERY_RESULT, &[7, 0, 0, 0, 0, 0, 0, 0, 0]);
        let err = WireMessage::read_from(&mut &buf[..]).unwrap_err();
        assert!(err.to_string().contains("unknown query answer kind"), "got: {err}");

        // QueryResult label / edge counts lying about the remaining bytes.
        let mut payload = vec![1u8];
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        let buf = serve_frame(TAG_QUERY_RESULT, &payload);
        let err = WireMessage::read_from(&mut &buf[..]).unwrap_err();
        assert!(err.to_string().contains("label count exceeds remaining payload"), "got: {err}");

        let mut payload = vec![2u8];
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&[0u8; 8]); // room for one edge, claims two
        let buf = serve_frame(TAG_QUERY_RESULT, &payload);
        let err = WireMessage::read_from(&mut &buf[..]).unwrap_err();
        assert!(err.to_string().contains("edge count exceeds remaining payload"), "got: {err}");

        // ErrorReply whose length field overruns the payload.
        let mut payload = Vec::new();
        payload.extend_from_slice(&100u32.to_le_bytes());
        payload.extend_from_slice(b"short");
        let buf = serve_frame(TAG_ERROR_REPLY, &payload);
        let err = WireMessage::read_from(&mut &buf[..]).unwrap_err();
        assert!(
            err.to_string().contains("error message length exceeds remaining payload"),
            "got: {err}"
        );

        // ErrorReply carrying bytes that are not UTF-8.
        let mut payload = Vec::new();
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&[0xFF, 0xFE]);
        let buf = serve_frame(TAG_ERROR_REPLY, &payload);
        let err = WireMessage::read_from(&mut &buf[..]).unwrap_err();
        assert!(err.to_string().contains("not valid UTF-8"), "got: {err}");

        // Fixed-size serve frames truncate / trail like any other.
        for (tag, len) in
            [(TAG_CLIENT_HELLO_ACK, 16usize), (TAG_UPDATE_ACK, 8), (TAG_BUSY, 8), (TAG_QUERY, 1)]
        {
            let short = serve_frame(tag, &vec![0u8; len - 1]);
            assert!(WireMessage::read_from(&mut &short[..]).is_err(), "tag {tag} short");
            let long = serve_frame(tag, &vec![0u8; len + 1]);
            assert!(WireMessage::read_from(&mut &long[..]).is_err(), "tag {tag} long");
        }
        let hello = serve_frame(TAG_CLIENT_HELLO, &[0]);
        assert!(WireMessage::read_from(&mut &hello[..]).is_err(), "ClientHello trailing byte");
    }
}
