//! The evaluation dataset catalog (paper §6.1, Figure 10).
//!
//! Declares every dataset the paper evaluates on, plus scaled-down kron
//! variants for laptop-scale reproduction. The four real-world graphs are
//! *synthetic stand-ins* with matched node/edge counts (see DESIGN.md §3:
//! the paper uses them only to validate correctness on sparse / skewed
//! shapes, which the stand-ins preserve).

use crate::gnp::gnm_edges;
use crate::kronecker::KroneckerGenerator;
use crate::preferential::preferential_attachment_edges;
use crate::streamify::{streamify, StreamifyConfig, StreamifyResult};
use gz_graph::Edge;

/// How a dataset's edge set is generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeneratorSpec {
    /// Dense stochastic-Kronecker graph on `2^scale` vertices.
    Kronecker {
        /// log2 of the vertex count.
        scale: u32,
        /// Target edge density (fraction of `C(V,2)`).
        density: f64,
    },
    /// Uniform `G(n, m)` random graph.
    ErdosRenyi {
        /// Vertex count.
        nodes: u64,
        /// Exact edge count.
        edges: u64,
    },
    /// Preferential-attachment (heavy-tailed) graph.
    Preferential {
        /// Vertex count.
        nodes: u64,
        /// Approximate edge count.
        edges: u64,
    },
}

/// A named evaluation dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Catalog name (paper Figure 10 names where applicable).
    pub name: String,
    /// Vertex universe size.
    pub num_vertices: u64,
    /// Edge count the paper reports (or targets, for generated graphs).
    pub nominal_edges: u64,
    /// Generator.
    pub spec: GeneratorSpec,
}

impl Dataset {
    /// The paper's kron dataset at a given scale: `2^scale` vertices with
    /// half of all possible edges.
    pub fn kron(scale: u32) -> Self {
        let v = 1u64 << scale;
        Dataset {
            name: format!("kron{scale}"),
            num_vertices: v,
            nominal_edges: gz_graph::edge_index_count(v) / 2,
            spec: GeneratorSpec::Kronecker { scale, density: 0.5 },
        }
    }

    /// Generate the edge set, deterministic in `seed`.
    pub fn generate(&self, seed: u64) -> Vec<Edge> {
        match self.spec {
            GeneratorSpec::Kronecker { scale, density } => {
                KroneckerGenerator::new(scale, density, seed).edges()
            }
            GeneratorSpec::ErdosRenyi { nodes, edges } => gnm_edges(nodes, edges, seed),
            GeneratorSpec::Preferential { nodes, edges } => {
                preferential_attachment_edges(nodes, edges, seed)
            }
        }
    }

    /// Generate the dataset and convert it into an update stream
    /// (the full §6.1 pipeline).
    pub fn stream(&self, seed: u64, config: &StreamifyConfig) -> StreamifyResult {
        let edges = self.generate(seed);
        streamify(self.num_vertices, &edges, config)
    }

    /// Approximate density (fraction of possible edges).
    pub fn density(&self) -> f64 {
        gz_graph::stats::density(self.num_vertices, self.nominal_edges)
    }
}

/// The Figure 10 kron datasets (full paper scale). Generating kron16–18
/// requires the paper's workstation budget; the default repro scale uses
/// [`scaled_kron_datasets`].
pub fn paper_kron_datasets() -> Vec<Dataset> {
    [13u32, 15, 16, 17, 18].into_iter().map(Dataset::kron).collect()
}

/// Scaled-down kron datasets for laptop-scale reproduction: same generator
/// and density, smaller scales. Shape comparisons (who wins, crossovers)
/// are preserved; EXPERIMENTS.md records the mapping.
pub fn scaled_kron_datasets(max_scale: u32) -> Vec<Dataset> {
    (8..=max_scale).step_by(2).map(Dataset::kron).collect()
}

/// Stand-ins for the paper's four real-world graphs (Figure 10 dimensions).
pub fn real_world_standins() -> Vec<Dataset> {
    vec![
        Dataset {
            name: "p2p-gnutella".into(),
            num_vertices: 63_000,
            nominal_edges: 150_000,
            spec: GeneratorSpec::ErdosRenyi { nodes: 63_000, edges: 150_000 },
        },
        Dataset {
            name: "rec-amazon".into(),
            num_vertices: 92_000,
            nominal_edges: 130_000,
            spec: GeneratorSpec::ErdosRenyi { nodes: 92_000, edges: 130_000 },
        },
        Dataset {
            name: "google-plus".into(),
            num_vertices: 110_000,
            nominal_edges: 14_000_000,
            spec: GeneratorSpec::Preferential { nodes: 110_000, edges: 14_000_000 },
        },
        Dataset {
            name: "web-uk".into(),
            num_vertices: 130_000,
            nominal_edges: 12_000_000,
            spec: GeneratorSpec::Preferential { nodes: 130_000, edges: 12_000_000 },
        },
    ]
}

/// Scaled-down stand-ins with the same *shape* (density, skew) as the
/// real-world graphs, sized for fast tests.
pub fn tiny_standins() -> Vec<Dataset> {
    vec![
        Dataset {
            name: "p2p-gnutella-tiny".into(),
            num_vertices: 630,
            nominal_edges: 1_500,
            spec: GeneratorSpec::ErdosRenyi { nodes: 630, edges: 1_500 },
        },
        Dataset {
            name: "rec-amazon-tiny".into(),
            num_vertices: 920,
            nominal_edges: 1_300,
            spec: GeneratorSpec::ErdosRenyi { nodes: 920, edges: 1_300 },
        },
        Dataset {
            name: "google-plus-tiny".into(),
            num_vertices: 1_100,
            nominal_edges: 140_000,
            spec: GeneratorSpec::Preferential { nodes: 1_100, edges: 140_000 },
        },
        Dataset {
            name: "web-uk-tiny".into(),
            num_vertices: 1_300,
            nominal_edges: 120_000,
            spec: GeneratorSpec::Preferential { nodes: 1_300, edges: 120_000 },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kron_names_and_density() {
        let d = Dataset::kron(13);
        assert_eq!(d.name, "kron13");
        assert_eq!(d.num_vertices, 1 << 13);
        assert!((d.density() - 0.5).abs() < 0.01);
    }

    #[test]
    fn paper_catalog_matches_figure10_nodes() {
        let names: Vec<(String, u64)> =
            paper_kron_datasets().into_iter().map(|d| (d.name, d.num_vertices)).collect();
        assert_eq!(
            names,
            vec![
                ("kron13".to_string(), 1 << 13),
                ("kron15".to_string(), 1 << 15),
                ("kron16".to_string(), 1 << 16),
                ("kron17".to_string(), 1 << 17),
                ("kron18".to_string(), 1 << 18),
            ]
        );
    }

    #[test]
    fn small_kron_generates_and_streams() {
        let d = Dataset::kron(8);
        let edges = d.generate(1);
        let possible = gz_graph::edge_index_count(d.num_vertices) as f64;
        let density = edges.len() as f64 / possible;
        assert!((0.4..0.6).contains(&density), "density {density}");

        let r = d.stream(1, &StreamifyConfig::default());
        assert!(r.updates.len() >= edges.len());
    }

    #[test]
    fn standins_generate_with_roughly_right_size() {
        for d in tiny_standins() {
            let edges = d.generate(3);
            let got = edges.len() as f64;
            let want = d.nominal_edges as f64;
            assert!(
                (0.8 * want..=1.05 * want + 10.0).contains(&got),
                "{}: got {got} want ~{want}",
                d.name
            );
        }
    }

    #[test]
    fn figure10_real_world_dims() {
        let dims: Vec<(String, u64, u64)> = real_world_standins()
            .into_iter()
            .map(|d| (d.name, d.num_vertices, d.nominal_edges))
            .collect();
        assert_eq!(dims[0], ("p2p-gnutella".to_string(), 63_000, 150_000));
        assert_eq!(dims[3], ("web-uk".to_string(), 130_000, 12_000_000));
    }
}
