//! Graph-stream substrate for the GraphZeppelin reproduction.
//!
//! The paper's evaluation (§6.1, Figure 10) runs on streams synthesized from
//! Graph500-style Kronecker graphs plus four real-world graphs. This crate
//! builds all of that from scratch:
//!
//! - [`update`] — the stream update model (`((u,v), Δ)`, paper §2.1).
//! - [`kronecker`] — dense stochastic-Kronecker generator (the `kronNN`
//!   datasets: ~half of all possible edges present) and a classic R-MAT
//!   sampler for sparse skewed graphs.
//! - [`gnp`] — Erdős–Rényi `G(n, m)` (stand-in for sparse SNAP graphs).
//! - [`preferential`] — preferential attachment (stand-in for the dense
//!   power-law google-plus / web-uk graphs).
//! - [`streamify`] — turns a target graph into a random insert/delete stream
//!   with the paper's four guarantees (§6.1).
//! - [`format`] — binary on-disk stream format with buffered readers/writers.
//! - [`catalog`] — the named datasets of Figure 10 (plus scaled-down
//!   variants used by tests and the default benchmark scale).
//! - [`wire`] — the framed, versioned coordinator ↔ shard-worker protocol
//!   (the §8 cluster outlook made concrete).

pub mod catalog;
pub mod format;
pub mod gnp;
pub mod kronecker;
pub mod preferential;
pub mod streamify;
pub mod update;
pub mod wire;

pub use catalog::{Dataset, GeneratorSpec};
pub use streamify::{streamify, StreamifyConfig};
pub use update::{EdgeUpdate, UpdateKind};
pub use wire::{SketchEntry, WireMessage, PROTOCOL_VERSION};
