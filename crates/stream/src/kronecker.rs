//! Stochastic-Kronecker graph generation (the Graph500 model).
//!
//! The paper's `kronNN` datasets are produced "using a Graph500
//! specification": simple undirected graphs on `2^scale` vertices with
//! roughly **half of all possible edges** present (§6.1). Graph500's
//! generator is the R-MAT / stochastic-Kronecker model: edge probabilities
//! are a `scale`-fold Kronecker power of a 2×2 initiator matrix.
//!
//! Two sampling strategies are provided:
//!
//! - [`KroneckerGenerator`] — per-edge Bernoulli over all `C(V,2)` slots with
//!   the exact Kronecker probability (computed in O(1) per edge from bit
//!   overlap counts). This is the right tool for the paper's *dense* graphs,
//!   where sampling-with-rejection would thrash on duplicates.
//! - [`RmatSampler`] — the classic recursive quadrant sampler, right for
//!   sparse skewed graphs.

use gz_graph::Edge;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// 2×2 initiator matrix of per-bit edge probabilities.
///
/// `Pr[edge (u,v)] = Π_i m[bit_i(u)][bit_i(v)]` over the `scale` bit
/// positions. The default is tuned so a `scale`-power has expected density
/// ≈ 0.5 with mild skew — matching Figure 10's kron densities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Initiator {
    /// Probability factor for bit pattern (0,0).
    pub p00: f64,
    /// Probability factor for bit pattern (0,1) and (1,0) — kept symmetric
    /// because edges are undirected.
    pub p01: f64,
    /// Probability factor for bit pattern (1,1).
    pub p11: f64,
}

impl Initiator {
    /// Initiator calibrated so the Kronecker power at `scale` has expected
    /// density ≈ `target_density`, preserving Graph500-like skew
    /// (low-id vertices denser than high-id ones).
    pub fn for_density(scale: u32, target_density: f64) -> Self {
        assert!((0.0..=1.0).contains(&target_density));
        // Fix the skew shape (ratios ~ Graph500's A:B:D) and scale all
        // entries so the mean entry is density^(1/scale).
        let (a, b, d) = (1.10f64, 1.00, 0.82);
        let mean = (a + 2.0 * b + d) / 4.0;
        let want = target_density.powf(1.0 / scale as f64);
        let k = want / mean;
        Initiator { p00: (a * k).min(1.0), p01: (b * k).min(1.0), p11: (d * k).min(1.0) }
    }

    /// Probability of edge `(u, v)` at the given scale.
    #[inline]
    pub fn edge_probability(&self, scale: u32, u: u64, v: u64) -> f64 {
        let both = (u & v).count_ones(); // (1,1) positions
        let either = (u | v).count_ones();
        let neither = scale - either; // (0,0) positions
        let mixed = either - both; // (0,1)+(1,0) positions
        self.p00.powi(neither as i32) * self.p01.powi(mixed as i32) * self.p11.powi(both as i32)
    }
}

impl Default for Initiator {
    fn default() -> Self {
        // Graph500 reference initiator (A=0.57, B=C=0.19, D=0.05) —
        // appropriate for the sparse R-MAT sampler.
        Initiator { p00: 0.57, p01: 0.19, p11: 0.05 }
    }
}

/// Dense stochastic-Kronecker generator: exact per-edge Bernoulli sampling.
#[derive(Debug, Clone)]
pub struct KroneckerGenerator {
    scale: u32,
    initiator: Initiator,
    seed: u64,
}

impl KroneckerGenerator {
    /// Generator for a `2^scale`-vertex graph with expected density
    /// `target_density` (the paper's kron graphs use 0.5).
    pub fn new(scale: u32, target_density: f64, seed: u64) -> Self {
        assert!((1..=30).contains(&scale), "scale out of range");
        KroneckerGenerator { scale, initiator: Initiator::for_density(scale, target_density), seed }
    }

    /// Number of vertices `2^scale`.
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Generate the edge set. Deterministic in `(scale, density, seed)`.
    ///
    /// Visits all `C(V,2)` slots; probabilities are evaluated from
    /// precomputed power tables, so generation is a tight loop suitable for
    /// the multi-million-edge bench datasets.
    pub fn edges(&self) -> Vec<Edge> {
        let n = self.num_vertices();
        let s = self.scale as usize;
        // pow tables: p^k for k in 0..=scale.
        let table = |p: f64| -> Vec<f64> { (0..=s).map(|k| p.powi(k as i32)).collect::<Vec<_>>() };
        let (t00, t01, t11) =
            (table(self.initiator.p00), table(self.initiator.p01), table(self.initiator.p11));
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let both = (u & v).count_ones() as usize;
                let either = (u | v).count_ones() as usize;
                let p = t00[s - either] * t01[either - both] * t11[both];
                if rng.gen::<f64>() < p {
                    edges.push(Edge::new(u as u32, v as u32));
                }
            }
        }
        edges
    }
}

/// Classic R-MAT sampler: draws edges by recursive quadrant descent,
/// deduplicates, and drops self-loops (as the paper does to its Graph500
/// output, §6.1).
#[derive(Debug, Clone)]
pub struct RmatSampler {
    scale: u32,
    target_edges: u64,
    initiator: Initiator,
    seed: u64,
}

impl RmatSampler {
    /// Sampler for `2^scale` vertices aiming at `target_edges` distinct
    /// edges with the default (skewed) initiator.
    pub fn new(scale: u32, target_edges: u64, seed: u64) -> Self {
        assert!((1..=31).contains(&scale));
        let possible = gz_graph::edge_index_count(1u64 << scale);
        assert!(
            target_edges <= possible / 2,
            "R-MAT rejection sampling needs density ≤ 0.5; use KroneckerGenerator"
        );
        RmatSampler { scale, target_edges, initiator: Initiator::default(), seed }
    }

    /// Number of vertices `2^scale`.
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    fn sample_endpoint_pair(&self, rng: &mut SmallRng) -> (u32, u32) {
        let Initiator { p00: a, p01: b, p11: d } = self.initiator;
        let sum = a + 2.0 * b + d;
        let (pa, pb, pc) = (a / sum, b / sum, b / sum);
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..self.scale {
            u <<= 1;
            v <<= 1;
            let x: f64 = rng.gen();
            if x < pa {
                // quadrant (0,0)
            } else if x < pa + pb {
                v |= 1;
            } else if x < pa + pb + pc {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        (u, v)
    }

    /// Generate the deduplicated edge set (exactly `target_edges` edges,
    /// assuming the probability mass allows it; loops until reached).
    pub fn edges(&self) -> Vec<Edge> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut set = std::collections::HashSet::with_capacity(self.target_edges as usize);
        let mut attempts = 0u64;
        // Guard: an adversarially skewed initiator might not have enough
        // distinct support; bail out after generous oversampling.
        let max_attempts = self.target_edges.saturating_mul(1000).max(1 << 20);
        while (set.len() as u64) < self.target_edges && attempts < max_attempts {
            attempts += 1;
            let (u, v) = self.sample_endpoint_pair(&mut rng);
            if u != v {
                set.insert(Edge::new(u, v));
            }
        }
        let mut edges: Vec<Edge> = set.into_iter().collect();
        edges.sort_unstable();
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gz_graph::edge_index_count;

    #[test]
    fn dense_kron_density_near_target() {
        let g = KroneckerGenerator::new(9, 0.5, 42);
        let edges = g.edges();
        let possible = edge_index_count(g.num_vertices()) as f64;
        let density = edges.len() as f64 / possible;
        assert!((0.42..0.58).contains(&density), "density {density}");
    }

    #[test]
    fn kron_deterministic_in_seed() {
        let a = KroneckerGenerator::new(7, 0.5, 1).edges();
        let b = KroneckerGenerator::new(7, 0.5, 1).edges();
        let c = KroneckerGenerator::new(7, 0.5, 2).edges();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn kron_is_skewed_toward_low_ids() {
        // The initiator weights (0,0) bit patterns highest, so low-id
        // vertices should have higher average degree than high-id ones.
        let g = KroneckerGenerator::new(9, 0.5, 7);
        let n = g.num_vertices() as usize;
        let mut degree = vec![0u32; n];
        for e in g.edges() {
            degree[e.u() as usize] += 1;
            degree[e.v() as usize] += 1;
        }
        let lo: u64 = degree[..n / 8].iter().map(|&d| d as u64).sum();
        let hi: u64 = degree[n - n / 8..].iter().map(|&d| d as u64).sum();
        assert!(lo > hi, "low-id degree sum {lo} not above high-id {hi}");
    }

    #[test]
    fn kron_no_self_loops_or_duplicates() {
        let edges = KroneckerGenerator::new(8, 0.5, 3).edges();
        let set: std::collections::HashSet<_> = edges.iter().collect();
        assert_eq!(set.len(), edges.len());
        // Edge::new panics on self-loops, so reaching here proves none.
    }

    #[test]
    fn edge_probability_matches_bit_pattern_count() {
        let init = Initiator { p00: 0.9, p01: 0.5, p11: 0.2 };
        // scale 4, u=0b0011, v=0b0101: both=1 (bit0), mixed=2 (bits 1,2),
        // neither=1 (bit3).
        let p = init.edge_probability(4, 0b0011, 0b0101);
        assert!((p - 0.9 * 0.5 * 0.5 * 0.2).abs() < 1e-12);
    }

    #[test]
    fn rmat_hits_target_edge_count() {
        let s = RmatSampler::new(10, 3000, 9);
        let edges = s.edges();
        assert_eq!(edges.len(), 3000);
        // sorted + dedup by construction
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn rmat_deterministic() {
        assert_eq!(RmatSampler::new(9, 1000, 5).edges(), RmatSampler::new(9, 1000, 5).edges());
    }

    #[test]
    #[should_panic(expected = "density")]
    fn rmat_rejects_dense_targets() {
        let _ = RmatSampler::new(4, 100, 1); // C(16,2)=120; 100 > 60
    }
}
