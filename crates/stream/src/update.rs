//! The stream update model (paper §2.1).
//!
//! Each update has the form `((u, v), Δ)` with `u ≠ v` and `Δ ∈ {−1, +1}`:
//! `+1` inserts the edge, `−1` deletes it. A valid stream only inserts absent
//! edges and only deletes present ones; [`validate_stream`] checks exactly
//! that (used to certify generator output in tests).

use gz_graph::Edge;

/// Whether an update inserts or deletes its edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateKind {
    /// Δ = +1.
    Insert,
    /// Δ = −1.
    Delete,
}

impl UpdateKind {
    /// The signed weight Δ of this update.
    #[inline]
    pub fn delta(self) -> i32 {
        match self {
            UpdateKind::Insert => 1,
            UpdateKind::Delete => -1,
        }
    }

    /// Encode for the binary format.
    pub(crate) fn to_byte(self) -> u8 {
        match self {
            UpdateKind::Insert => 0,
            UpdateKind::Delete => 1,
        }
    }

    /// Decode from the binary format.
    pub(crate) fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(UpdateKind::Insert),
            1 => Some(UpdateKind::Delete),
            _ => None,
        }
    }
}

/// One stream element: an edge plus its insert/delete flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeUpdate {
    /// First endpoint (canonical order is *not* required at the stream
    /// level; systems canonicalize internally).
    pub u: u32,
    /// Second endpoint.
    pub v: u32,
    /// Insert or delete.
    pub kind: UpdateKind,
}

impl EdgeUpdate {
    /// An insertion of edge `(u, v)`.
    #[inline]
    pub fn insert(u: u32, v: u32) -> Self {
        EdgeUpdate { u, v, kind: UpdateKind::Insert }
    }

    /// A deletion of edge `(u, v)`.
    #[inline]
    pub fn delete(u: u32, v: u32) -> Self {
        EdgeUpdate { u, v, kind: UpdateKind::Delete }
    }

    /// The canonical [`Edge`] of this update.
    #[inline]
    pub fn edge(&self) -> Edge {
        Edge::new(self.u, self.v)
    }
}

/// Violations detectable in an update stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamViolation {
    /// An insert of an edge that is already present (position, update).
    DoubleInsert(usize, EdgeUpdate),
    /// A delete of an edge that is absent (position, update).
    DeleteAbsent(usize, EdgeUpdate),
    /// A self-loop update (position).
    SelfLoop(usize),
    /// An endpoint ≥ the declared vertex count (position).
    VertexOutOfRange(usize),
}

/// Validate a stream against the paper's model: inserts only of absent
/// edges, deletes only of present edges, no self-loops, endpoints in range.
/// Returns the first violation found, or the final edge set.
pub fn validate_stream(
    num_vertices: u64,
    stream: impl IntoIterator<Item = EdgeUpdate>,
) -> Result<std::collections::HashSet<Edge>, StreamViolation> {
    let mut present = std::collections::HashSet::new();
    for (pos, upd) in stream.into_iter().enumerate() {
        if upd.u == upd.v {
            return Err(StreamViolation::SelfLoop(pos));
        }
        if upd.u as u64 >= num_vertices || upd.v as u64 >= num_vertices {
            return Err(StreamViolation::VertexOutOfRange(pos));
        }
        let e = upd.edge();
        match upd.kind {
            UpdateKind::Insert => {
                if !present.insert(e) {
                    return Err(StreamViolation::DoubleInsert(pos, upd));
                }
            }
            UpdateKind::Delete => {
                if !present.remove(&e) {
                    return Err(StreamViolation::DeleteAbsent(pos, upd));
                }
            }
        }
    }
    Ok(present)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_signs() {
        assert_eq!(UpdateKind::Insert.delta(), 1);
        assert_eq!(UpdateKind::Delete.delta(), -1);
    }

    #[test]
    fn byte_round_trip() {
        for k in [UpdateKind::Insert, UpdateKind::Delete] {
            assert_eq!(UpdateKind::from_byte(k.to_byte()), Some(k));
        }
        assert_eq!(UpdateKind::from_byte(7), None);
    }

    #[test]
    fn valid_stream_returns_final_edges() {
        let stream = vec![
            EdgeUpdate::insert(0, 1),
            EdgeUpdate::insert(1, 2),
            EdgeUpdate::delete(1, 0), // same edge as (0,1)
        ];
        let final_edges = validate_stream(3, stream).unwrap();
        assert_eq!(final_edges.len(), 1);
        assert!(final_edges.contains(&Edge::new(1, 2)));
    }

    #[test]
    fn detects_double_insert() {
        let stream = vec![EdgeUpdate::insert(0, 1), EdgeUpdate::insert(1, 0)];
        assert!(matches!(validate_stream(2, stream), Err(StreamViolation::DoubleInsert(1, _))));
    }

    #[test]
    fn detects_delete_of_absent() {
        let stream = vec![EdgeUpdate::delete(0, 1)];
        assert!(matches!(validate_stream(2, stream), Err(StreamViolation::DeleteAbsent(0, _))));
    }

    #[test]
    fn detects_self_loop_and_range() {
        assert_eq!(
            validate_stream(5, vec![EdgeUpdate::insert(2, 2)]),
            Err(StreamViolation::SelfLoop(0))
        );
        assert_eq!(
            validate_stream(5, vec![EdgeUpdate::insert(2, 5)]),
            Err(StreamViolation::VertexOutOfRange(0))
        );
    }
}
