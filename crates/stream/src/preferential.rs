//! Preferential-attachment (Barabási–Albert-style) generation.
//!
//! Stand-in generator for the dense skewed real-world graphs of §6.3
//! (google-plus, web-uk): heavy-tailed degree distributions with a target
//! edge budget. Each arriving vertex attaches `m ≈ E/V` edges to existing
//! vertices chosen proportionally to degree (with a uniform escape hatch to
//! keep the graph simple when the neighborhood saturates).

use gz_graph::Edge;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate a preferential-attachment graph on `n` vertices with roughly
/// `target_edges` edges. Deterministic in `seed`.
pub fn preferential_attachment_edges(n: u64, target_edges: u64, seed: u64) -> Vec<Edge> {
    assert!(n >= 2);
    let m = (target_edges / n.saturating_sub(1).max(1)).max(1) as usize;
    let mut rng = SmallRng::seed_from_u64(seed);

    // `targets` holds one entry per half-edge endpoint: sampling uniformly
    // from it is sampling proportionally to degree.
    let mut endpoint_pool: Vec<u32> = Vec::with_capacity(2 * target_edges as usize + 2);
    let mut edges: Vec<Edge> = Vec::with_capacity(target_edges as usize);
    let mut present = std::collections::HashSet::with_capacity(target_edges as usize);

    // Seed with a single edge so the pool is nonempty.
    edges.push(Edge::new(0, 1));
    present.insert(Edge::new(0, 1));
    endpoint_pool.extend_from_slice(&[0, 1]);

    for v in 2..n as u32 {
        let mut attached = 0usize;
        let mut attempts = 0usize;
        let want = m.min(v as usize); // cannot attach more than v distinct
        while attached < want && attempts < 20 * m + 50 {
            attempts += 1;
            // Degree-proportional choice with a 10% uniform mix (keeps the
            // tail from starving and guarantees progress on dense targets).
            let t = if rng.gen::<f64>() < 0.9 && !endpoint_pool.is_empty() {
                endpoint_pool[rng.gen_range(0..endpoint_pool.len())]
            } else {
                rng.gen_range(0..v)
            };
            if t == v {
                continue;
            }
            let e = Edge::new(v, t);
            if present.insert(e) {
                edges.push(e);
                endpoint_pool.push(v);
                endpoint_pool.push(t);
                attached += 1;
            }
        }
    }

    // Top up toward the exact target with degree-biased extra edges among
    // existing vertices (keeps the heavy tail).
    let mut attempts = 0u64;
    while (edges.len() as u64) < target_edges && attempts < target_edges * 50 + 1000 {
        attempts += 1;
        let a = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let e = Edge::new(a, b);
        if present.insert(e) {
            edges.push(e);
            endpoint_pool.push(a);
            endpoint_pool.push(b);
        }
    }

    edges.sort_unstable();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use gz_graph::stats::DegreeStats;
    use gz_graph::AdjacencyList;

    #[test]
    fn roughly_hits_edge_target() {
        let edges = preferential_attachment_edges(500, 5000, 3);
        let got = edges.len() as f64;
        assert!((4500.0..=5001.0).contains(&got), "got {got} edges");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            preferential_attachment_edges(200, 1000, 5),
            preferential_attachment_edges(200, 1000, 5)
        );
    }

    #[test]
    fn heavy_tailed_degrees() {
        let n = 1000u64;
        let edges = preferential_attachment_edges(n, 5000, 7);
        let g = AdjacencyList::from_edges(n as usize, edges.iter().map(|e| (e.u(), e.v())));
        let stats = DegreeStats::of(&g);
        // Preferential attachment: max degree far above the mean.
        assert!(stats.max as f64 > 5.0 * stats.mean, "max {} mean {}", stats.max, stats.mean);
    }

    #[test]
    fn simple_graph() {
        let edges = preferential_attachment_edges(100, 600, 9);
        let set: std::collections::HashSet<_> = edges.iter().collect();
        assert_eq!(set.len(), edges.len(), "duplicate edges");
    }
}
