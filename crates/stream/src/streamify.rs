//! Turn a target graph into a random insert/delete stream (paper §6.1).
//!
//! The paper converts each evaluation graph into a stream with four
//! guarantees:
//!
//! 1. an insertion of edge `e` always occurs before a deletion of `e`;
//! 2. an edge never receives two consecutive updates of the same type;
//! 3. a small set of nodes (fewer than 150) is disconnected from the rest of
//!    the final graph (so queries have non-trivial components to find);
//! 4. by the end of the stream exactly the input graph — minus the edges
//!    removed for (3) — remains.
//!
//! The mechanism "deliberately adds edges not in the original graph, but they
//! are always subsequently deleted": transient churn exercises the deletion
//! path without changing the final answer.
//!
//! Implementation: every edge contributes an alternating event sequence
//! (starting with an insert). Each event draws a random timestamp, per-edge
//! timestamps are sorted so the sequence order is preserved, and a stable
//! global sort by timestamp interleaves all edges uniformly.

use crate::update::{EdgeUpdate, UpdateKind};
use gz_graph::Edge;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Configuration for [`streamify`].
#[derive(Debug, Clone)]
pub struct StreamifyConfig {
    /// RNG seed: streams are deterministic in (graph, config).
    pub seed: u64,
    /// How many nodes to disconnect (guarantee 3). Clamped to < V.
    /// The paper uses "fewer than 150".
    pub disconnect_nodes: usize,
    /// Probability that a surviving edge gets one extra delete+insert churn
    /// cycle (repeated geometrically).
    pub churn_prob: f64,
    /// Number of transient non-edges, as a fraction of the edge count.
    pub noise_fraction: f64,
}

impl Default for StreamifyConfig {
    fn default() -> Self {
        StreamifyConfig {
            seed: 0xC0FFEE,
            disconnect_nodes: 32,
            churn_prob: 0.02,
            noise_fraction: 0.02,
        }
    }
}

/// Output of [`streamify`].
#[derive(Debug, Clone)]
pub struct StreamifyResult {
    /// The shuffled update stream.
    pub updates: Vec<EdgeUpdate>,
    /// The nodes disconnected per guarantee (3).
    pub disconnected: Vec<u32>,
    /// Number of edges present when the stream ends.
    pub final_edge_count: u64,
}

/// Build a random insert/delete stream whose final graph is `edges` minus
/// all edges incident to a small disconnected node set.
///
/// ```
/// use gz_stream::{streamify, StreamifyConfig};
/// use gz_graph::Edge;
///
/// let edges = vec![Edge::new(0, 1), Edge::new(1, 2)];
/// let config = StreamifyConfig { disconnect_nodes: 0, ..Default::default() };
/// let result = streamify(8, &edges, &config);
/// // Inserts and deletes interleave, but the final graph is exactly `edges`.
/// assert_eq!(result.final_edge_count, 2);
/// assert!(result.updates.len() >= edges.len());
/// ```
pub fn streamify(num_vertices: u64, edges: &[Edge], config: &StreamifyConfig) -> StreamifyResult {
    assert!(num_vertices >= 2);
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // Guarantee (3): pick the disconnect set by partial shuffle.
    let k = config.disconnect_nodes.min(num_vertices as usize - 1);
    let disconnected = sample_distinct_vertices(num_vertices, k, &mut rng);
    let dset: HashSet<u32> = disconnected.iter().copied().collect();

    let edge_set: HashSet<Edge> = edges.iter().copied().collect();

    // Events: (timestamp, update). Stable sort keeps per-edge order.
    let mut events: Vec<(u32, EdgeUpdate)> = Vec::with_capacity(edges.len() * 2);
    let mut final_edge_count = 0u64;

    let mut timestamps = Vec::new();
    let mut push_sequence =
        |events: &mut Vec<(u32, EdgeUpdate)>, rng: &mut SmallRng, e: Edge, n_events: usize| {
            timestamps.clear();
            timestamps.extend((0..n_events).map(|_| rng.gen::<u32>()));
            timestamps.sort_unstable();
            for (i, &ts) in timestamps.iter().enumerate() {
                let kind = if i % 2 == 0 { UpdateKind::Insert } else { UpdateKind::Delete };
                events.push((ts, EdgeUpdate { u: e.u(), v: e.v(), kind }));
            }
        };

    for &e in edges {
        let touches_disconnected = dset.contains(&e.u()) || dset.contains(&e.v());
        let churn = geometric(&mut rng, config.churn_prob);
        if touches_disconnected {
            // Must end deleted: (I D) × (churn + 1).
            push_sequence(&mut events, &mut rng, e, 2 * (churn + 1));
        } else {
            // Must end inserted: I then (D I) × churn.
            push_sequence(&mut events, &mut rng, e, 2 * churn + 1);
            final_edge_count += 1;
        }
    }

    // Transient noise edges (never in the input graph, always end deleted).
    // Each noise edge must appear at most once: two interleaved alternating
    // sequences for one edge would break guarantee (2).
    let noise_target = (edges.len() as f64 * config.noise_fraction) as usize;
    let mut noise_seen: HashSet<Edge> = HashSet::with_capacity(noise_target);
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < noise_target && attempts < noise_target * 20 + 100 {
        attempts += 1;
        let a = rng.gen_range(0..num_vertices as u32);
        let b = rng.gen_range(0..num_vertices as u32);
        if a == b {
            continue;
        }
        let e = Edge::new(a, b);
        if edge_set.contains(&e) || !noise_seen.insert(e) {
            continue;
        }
        let churn = geometric(&mut rng, config.churn_prob);
        push_sequence(&mut events, &mut rng, e, 2 * (churn + 1));
        added += 1;
    }

    events.sort_by_key(|&(ts, _)| ts); // stable: preserves per-edge order
    let updates = events.into_iter().map(|(_, u)| u).collect();

    StreamifyResult { updates, disconnected, final_edge_count }
}

/// Geometric(p) count of extra churn cycles (0 with probability 1−p).
fn geometric(rng: &mut SmallRng, p: f64) -> usize {
    let mut n = 0;
    while n < 16 && rng.gen::<f64>() < p {
        n += 1;
    }
    n
}

fn sample_distinct_vertices(num_vertices: u64, k: usize, rng: &mut SmallRng) -> Vec<u32> {
    let mut chosen = HashSet::with_capacity(k);
    while chosen.len() < k {
        chosen.insert(rng.gen_range(0..num_vertices as u32));
    }
    let mut v: Vec<u32> = chosen.into_iter().collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnp::gnm_edges;
    use crate::update::validate_stream;

    fn check_guarantees(num_vertices: u64, edges: &[Edge], config: &StreamifyConfig) {
        let result = streamify(num_vertices, edges, config);

        // Guarantees (1) and (2) via full validation (insert-before-delete
        // and alternation are equivalent to "never double-insert / never
        // delete-absent" given per-edge alternating sequences).
        let final_edges = validate_stream(num_vertices, result.updates.clone())
            .expect("stream violates the update model");

        // Guarantee (4): final edge set is exactly the input minus edges
        // touching the disconnect set.
        let dset: HashSet<u32> = result.disconnected.iter().copied().collect();
        let expected: HashSet<Edge> = edges
            .iter()
            .copied()
            .filter(|e| !dset.contains(&e.u()) && !dset.contains(&e.v()))
            .collect();
        assert_eq!(final_edges, expected);
        assert_eq!(result.final_edge_count, expected.len() as u64);

        // Guarantee (3): the disconnect set is small and actually isolated.
        assert!(result.disconnected.len() < 150);
        for e in &final_edges {
            assert!(!dset.contains(&e.u()) && !dset.contains(&e.v()));
        }
    }

    #[test]
    fn guarantees_hold_on_random_graph() {
        let edges = gnm_edges(200, 1500, 42);
        check_guarantees(200, &edges, &StreamifyConfig::default());
    }

    #[test]
    fn guarantees_hold_with_heavy_churn() {
        let edges = gnm_edges(100, 800, 7);
        let config =
            StreamifyConfig { seed: 9, disconnect_nodes: 10, churn_prob: 0.5, noise_fraction: 0.3 };
        check_guarantees(100, &edges, &config);
    }

    #[test]
    fn stream_longer_than_edges() {
        // Noise and churn mean |stream| ≥ |edges| (Figure 10's update counts
        // exceed edge counts).
        let edges = gnm_edges(150, 1000, 3);
        let r = streamify(150, &edges, &StreamifyConfig::default());
        assert!(r.updates.len() >= edges.len());
    }

    #[test]
    fn deterministic_in_seed() {
        let edges = gnm_edges(80, 400, 5);
        let c = StreamifyConfig::default();
        let a = streamify(80, &edges, &c);
        let b = streamify(80, &edges, &c);
        assert_eq!(a.updates, b.updates);
        let c2 = StreamifyConfig { seed: 1, ..c };
        assert_ne!(streamify(80, &edges, &c2).updates, a.updates);
    }

    #[test]
    fn zero_churn_zero_noise_minimal_stream() {
        let edges = gnm_edges(60, 300, 11);
        let config =
            StreamifyConfig { seed: 1, disconnect_nodes: 0, churn_prob: 0.0, noise_fraction: 0.0 };
        let r = streamify(60, &edges, &config);
        assert_eq!(r.updates.len(), edges.len(), "pure insertion stream");
        assert!(r.updates.iter().all(|u| u.kind == UpdateKind::Insert));
        assert_eq!(r.final_edge_count, edges.len() as u64);
    }

    #[test]
    fn updates_are_shuffled() {
        // The stream must not be sorted by edge: count adjacent pairs that
        // share an endpoint — in a sorted stream nearly all would.
        let edges = gnm_edges(100, 2000, 13);
        let r = streamify(100, &edges, &StreamifyConfig::default());
        let adjacent_same_u =
            r.updates.windows(2).filter(|w| w[0].edge().u() == w[1].edge().u()).count();
        assert!(
            adjacent_same_u < r.updates.len() / 2,
            "stream looks sorted: {adjacent_same_u}/{} adjacent same-u pairs",
            r.updates.len()
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::update::validate_stream;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn always_a_valid_stream(
            n in 5u64..80,
            edge_frac in 0.0f64..0.8,
            seed in any::<u64>(),
            churn in 0.0f64..0.6,
            noise in 0.0f64..0.5,
            disconnect in 0usize..10
        ) {
            let m = (edge_frac * gz_graph::edge_index_count(n) as f64) as u64;
            let edges = crate::gnp::gnm_edges(n, m, seed);
            let config = StreamifyConfig {
                seed,
                disconnect_nodes: disconnect,
                churn_prob: churn,
                noise_fraction: noise,
            };
            let r = streamify(n, &edges, &config);
            let final_edges = validate_stream(n, r.updates.clone());
            prop_assert!(final_edges.is_ok());
            prop_assert_eq!(final_edges.unwrap().len() as u64, r.final_edge_count);
        }
    }
}
