//! Erdős–Rényi `G(n, m)` generation.
//!
//! Stand-in generator for the sparse real-world graphs of §6.3
//! (p2p-gnutella, rec-amazon): uniformly random graphs with an exact edge
//! count. Sampling draws distinct indices from the triangular edge-index
//! space and decodes them through the `gz-graph` codec, so it is O(m) with
//! no adjacency structure needed.

use gz_graph::{edge_index_count, index_to_edge, Edge};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate exactly `m` distinct uniformly random edges on `n` vertices.
///
/// Deterministic in `seed`. Panics if `m` exceeds `C(n,2)`.
pub fn gnm_edges(n: u64, m: u64, seed: u64) -> Vec<Edge> {
    let possible = edge_index_count(n);
    assert!(m <= possible, "requested {m} edges but only {possible} possible");
    let mut rng = SmallRng::seed_from_u64(seed);

    // Dense requests: Floyd's algorithm degenerates; do a Fisher–Yates-style
    // partial shuffle over indices only when m is a large fraction.
    if m * 3 >= possible {
        let mut all: Vec<u64> = (0..possible).collect();
        for i in 0..m as usize {
            let j = rng.gen_range(i..all.len());
            all.swap(i, j);
        }
        let mut edges: Vec<Edge> = all[..m as usize].iter().map(|&i| index_to_edge(i, n)).collect();
        edges.sort_unstable();
        return edges;
    }

    // Sparse requests: rejection sampling into a set.
    let mut set = std::collections::HashSet::with_capacity(m as usize);
    while (set.len() as u64) < m {
        set.insert(rng.gen_range(0..possible));
    }
    let mut edges: Vec<Edge> = set.into_iter().map(|i| index_to_edge(i, n)).collect();
    edges.sort_unstable();
    edges
}

/// Generate a random graph where each edge appears independently with
/// probability `p` (classic `G(n, p)`), deterministic in `seed`.
pub fn gnp_edges(n: u64, p: f64, seed: u64) -> Vec<Edge> {
    assert!((0.0..=1.0).contains(&p));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    // Geometric skipping: jump over non-edges in O(#edges) expected time.
    if p <= 0.0 {
        return edges;
    }
    let possible = edge_index_count(n);
    if p >= 1.0 {
        return (0..possible).map(|i| index_to_edge(i, n)).collect();
    }
    let log1p = (1.0 - p).ln();
    let mut idx: u64 = 0;
    loop {
        let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let skip = (r.ln() / log1p).floor() as u64;
        idx = match idx.checked_add(skip) {
            Some(i) => i,
            None => break,
        };
        if idx >= possible {
            break;
        }
        edges.push(index_to_edge(idx, n));
        idx += 1;
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_count_and_distinct() {
        let edges = gnm_edges(100, 500, 7);
        assert_eq!(edges.len(), 500);
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn gnm_dense_path() {
        let possible = edge_index_count(30);
        let edges = gnm_edges(30, possible, 1);
        assert_eq!(edges.len() as u64, possible);
    }

    #[test]
    fn gnm_deterministic() {
        assert_eq!(gnm_edges(50, 100, 3), gnm_edges(50, 100, 3));
        assert_ne!(gnm_edges(50, 100, 3), gnm_edges(50, 100, 4));
    }

    #[test]
    fn gnp_density_near_p() {
        let n = 200u64;
        let p = 0.1;
        let edges = gnp_edges(n, p, 11);
        let density = edges.len() as f64 / edge_index_count(n) as f64;
        assert!((density - p).abs() < 0.02, "density {density}");
    }

    #[test]
    fn gnp_extremes() {
        assert!(gnp_edges(50, 0.0, 1).is_empty());
        assert_eq!(gnp_edges(10, 1.0, 1).len() as u64, edge_index_count(10));
    }

    #[test]
    fn gnp_edges_sorted_distinct() {
        let edges = gnp_edges(100, 0.3, 5);
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
    }
}
