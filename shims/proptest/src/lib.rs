//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim implements the
//! slice of proptest the workspace's property tests use:
//!
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `binding in strategy` arguments,
//! - strategies: integer/float ranges, `any::<T>()`, tuples,
//!   [`collection::vec`], and [`bool::ANY`],
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! There is no shrinking: a failing case panics with the generated inputs in
//! the message instead of a minimized counterexample. Generation is
//! deterministic per test name, so failures reproduce across runs.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A source of generated values (proptest's `Strategy`, sans shrinking).
    pub trait Strategy {
        type Value: std::fmt::Debug + Clone;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: std::fmt::Debug + Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait AnyValue: std::fmt::Debug + Clone {
        fn any_value(rng: &mut SmallRng) -> Self;
    }

    /// The `any::<T>()` strategy: uniform over the domain with a bias toward
    /// boundary values (zero/one/MAX), which is where codec bugs live.
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: AnyValue>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: AnyValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::any_value(rng)
        }
    }

    macro_rules! impl_any_uint {
        ($($t:ty),*) => {$(
            impl AnyValue for $t {
                fn any_value(rng: &mut SmallRng) -> $t {
                    if rng.gen_range(0u32..16) == 0 {
                        *[0 as $t, 1 as $t, <$t>::MAX]
                            .get(rng.gen_range(0usize..3))
                            .unwrap()
                    } else {
                        rng.gen::<$t>()
                    }
                }
            }
        )*};
    }
    impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl AnyValue for u128 {
        fn any_value(rng: &mut SmallRng) -> u128 {
            if rng.gen_range(0u32..16) == 0 {
                [0u128, 1, u128::MAX][rng.gen_range(0usize..3)]
            } else {
                rng.gen::<u128>()
            }
        }
    }

    impl AnyValue for bool {
        fn any_value(rng: &mut SmallRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl AnyValue for f64 {
        fn any_value(rng: &mut SmallRng) -> f64 {
            rng.gen::<f64>()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut SmallRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut SmallRng) -> u128 {
            assert!(self.start < self.end);
            let span = self.end - self.start;
            self.start + rng.gen::<u128>() % span
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $S:ident),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 S0)
        (0 S0, 1 S1)
        (0 S0, 1 S1, 2 S2)
        (0 S0, 1 S1, 2 S2, 3 S3)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Size specifications accepted by [`vec`].
    pub trait SizeRange {
        fn pick(&self, rng: &mut SmallRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut SmallRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Strategy for vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy yielding uniformly random booleans (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut SmallRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Runner configuration; only `cases` is honored by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-test RNG: seeded from the test's name so runs are
    /// reproducible and parallel tests draw independent streams.
    pub fn rng_for_test(name: &str) -> SmallRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SmallRng::seed_from_u64(h)
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Expands to `continue` on the case loop (the shim does not re-draw, so the
/// effective case count shrinks by the rejection rate).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// The `proptest!` macro: declares `#[test]` functions whose arguments are
/// drawn from strategies, run for `cases` iterations each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($binding:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // The `#[test]` attribute is written by the caller inside the macro
        // body (matching real proptest), so metas pass through unchanged.
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::rng_for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let __case: u32 = __case;
                $(
                    let $binding =
                        $crate::strategy::Strategy::generate(&$strategy, &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..4, f in 0.0f64..1.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((0.0..1.5).contains(&f));
        }

        #[test]
        fn vec_strategy_len(mut v in crate::collection::vec(any::<u32>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn tuples_and_bools(pair in (0u32..5, crate::bool::ANY)) {
            prop_assert!(pair.0 < 5);
            let _: bool = pair.1;
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(seed in any::<u64>()) {
            prop_assert_eq!(seed.wrapping_add(0), seed);
        }
    }

    #[test]
    fn deterministic_per_name() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let mut a = crate::test_runner::rng_for_test("t");
        let mut b = crate::test_runner::rng_for_test("t");
        let mut c = crate::test_runner::rng_for_test("u");
        let (va, vb, vc) = (s.generate(&mut a), s.generate(&mut b), s.generate(&mut c));
        assert_eq!(va, vb);
        // Different name should (overwhelmingly) give a different stream.
        assert!(va != vc || s.generate(&mut a) != s.generate(&mut c));
    }
}
