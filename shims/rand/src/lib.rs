//! Minimal in-tree stand-in for the `rand` 0.8 crate.
//!
//! The build environment has no registry access, so this shim provides exactly
//! the surface the workspace uses: `rngs::SmallRng`, the `Rng`/`SeedableRng`
//! traits, `gen`, `gen_range`, and `gen_bool`. `SmallRng` is xoshiro256++
//! seeded through SplitMix64 — the same construction the real crate uses on
//! 64-bit targets — so streams are deterministic in the seed and of high
//! statistical quality.

pub mod rngs {
    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        pub(crate) fn step(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for seeding xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }
}

/// Core RNG interface: a source of uniformly random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain via
/// `Rng::gen` (the real crate's `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire widening-multiply reduction; bias is negligible for
                // the spans used here (all far below 2^64).
                let v = (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64;
                self.start + v as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let v = (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    #[inline]
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..1);
            assert_eq!(w, 0);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_rough_frequency() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
