//! Minimal in-tree stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the API shape the workspace relies on: `Mutex::lock` returning a
//! guard directly (no `Result`), `RwLock` with `read`/`write`, and a
//! `Condvar::wait` that takes `&mut MutexGuard`. Poisoning is ignored, which
//! matches parking_lot semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take ownership of the std
    // guard (std's wait consumes and returns it; parking_lot's borrows).
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { guard: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { guard: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside Condvar::wait")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let owned = guard.guard.take().expect("guard present before wait");
        let owned = self.inner.wait(owned).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(owned);
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { guard: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { guard: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        assert!(t.join().unwrap());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
