//! Minimal in-tree stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this shim provides the
//! API shape the workspace's benches use — `Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `Throughput`, `BenchmarkId`, the
//! `criterion_group!` / `criterion_main!` macros, and `black_box` — with a
//! simple wall-clock measurement loop instead of criterion's statistics. It
//! is enough to keep benches compiling and to get indicative numbers from
//! `cargo bench`; it makes no confidence-interval claims.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark's measured result, kept so harnesses can export
/// machine-readable baselines next to the printed report.
#[derive(Debug, Clone)]
pub struct RecordedBench {
    /// Full benchmark name (`group/case`).
    pub name: String,
    /// Best observed per-iteration time, nanoseconds.
    pub best_ns: f64,
    /// Mean per-iteration time across samples, nanoseconds.
    pub mean_ns: f64,
}

static RECORDED: Mutex<Vec<RecordedBench>> = Mutex::new(Vec::new());

/// Drain every result recorded since the last call (in execution order).
/// The real criterion writes JSON under `target/criterion`; this shim
/// exposes its measurements for the harness to persist instead.
pub fn take_recorded() -> Vec<RecordedBench> {
    std::mem::take(&mut RECORDED.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Record an externally measured result — e.g. a latency percentile a
/// load-test harness computed across its own samples — alongside the
/// loop-measured benches, so it lands in the same machine-readable
/// baseline. `ns` is stored as both best and mean: a percentile is a
/// single number, not a distribution the shim re-summarizes.
pub fn record_custom(name: impl Into<String>, ns: f64) {
    let name = name.into();
    println!("{name:<50} recorded: {}", fmt_time(ns / 1e9));
    RECORDED.lock().unwrap_or_else(|e| e.into_inner()).push(RecordedBench {
        name,
        best_ns: ns,
        mean_ns: ns,
    });
}

/// Throughput annotation attached to a benchmark (reported as rate).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

/// The benchmark manager (builder methods consume and return `self`, matching
/// criterion's `Criterion::default().sample_size(..)` idiom).
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let settings = self.settings.clone();
        run_benchmark(&id.into().id, &settings, None, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let settings = self.settings.clone();
        run_benchmark(&id.id, &settings, None, |b| f(b, input));
        self
    }
}

/// A named group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&full, &self.settings, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, &self.settings, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    settings: &Settings,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up: run single iterations until the warm-up budget is spent, and
    // use the observed per-iteration time to size the measurement batches.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < settings.warm_up_time || warm_iters == 0 {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
    let budget = settings.measurement_time.as_secs_f64();
    let total_iters = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
    let iters_per_sample = (total_iters / settings.sample_size as u64).max(1);

    let mut best = f64::INFINITY;
    let mut sum = 0.0;
    for _ in 0..settings.sample_size {
        let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
        f(&mut b);
        let per = b.elapsed.as_secs_f64() / iters_per_sample as f64;
        best = best.min(per);
        sum += per;
    }
    let mean = sum / settings.sample_size as f64;
    RECORDED.lock().unwrap_or_else(|e| e.into_inner()).push(RecordedBench {
        name: name.to_string(),
        best_ns: best * 1e9,
        mean_ns: mean * 1e9,
    });
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / mean),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / mean),
        None => String::new(),
    };
    println!("{name:<50} time: [{} .. {}]{rate}", fmt_time(best), fmt_time(mean));
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(2))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut c = fast_config();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_bench_with_input() {
        let mut c = fast_config();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.sample_size(2);
        let data = vec![1u64, 2, 3, 4];
        group.bench_with_input(BenchmarkId::from_parameter("n=4"), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn custom_results_are_recorded_verbatim() {
        let _ = take_recorded(); // isolate from parallel shim tests
        record_custom("load/p99", 1234.5);
        let recorded = take_recorded();
        let case = recorded.iter().find(|r| r.name == "load/p99").expect("custom recorded");
        assert_eq!(case.best_ns, 1234.5);
        assert_eq!(case.mean_ns, 1234.5);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn results_are_recorded_and_drained() {
        let mut c = fast_config();
        let _ = take_recorded(); // isolate from parallel shim tests
        c.bench_function("recorded-case", |b| b.iter(|| black_box(2 + 2)));
        let recorded = take_recorded();
        let case =
            recorded.iter().find(|r| r.name == "recorded-case").expect("bench result recorded");
        assert!(case.best_ns > 0.0 && case.mean_ns >= case.best_ns);
    }
}
