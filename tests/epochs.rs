//! Epoch-versioned query tests: the keystone invariant is that a query
//! pinned to epoch E is *bit-identical* to a stop-the-world query issued at
//! the moment E was sealed — labels, forest (with edge order), rounds used,
//! and sketch-failure counts — no matter how much the stream moves while
//! the query runs, which store serves the rounds (RAM or disk), how the
//! vertex set is sharded, or how many threads fold the answer. The
//! satellite half pins reclamation: an epoch's copy-on-write overlay is
//! bounded by the touched set, captures each group at most once, and does
//! not accumulate across seal/query/drop cycles.

use graph_zeppelin::{GraphZeppelin, GzConfig, ShardConfig, ShardedGraphZeppelin, StoreBackend};
use gz_testutil::TempDir;

fn ingest_single(gz: &mut GraphZeppelin, updates: &[(u32, u32, bool)]) {
    for &(u, v, d) in updates {
        gz.update(u, v, d);
    }
}

fn ingest_sharded(gz: &mut ShardedGraphZeppelin, updates: &[(u32, u32, bool)]) {
    for &(u, v, d) in updates {
        gz.update(u, v, d).expect("routed update");
    }
}

/// The concurrent-ingest stress test: a query thread folds a pinned epoch
/// while the owning thread keeps landing batches — ≥ 10 of them, each
/// force-flushed so the store really does move under the reader — and every
/// fold must still match the answer recorded at the seal.
#[test]
fn epoch_query_is_stable_under_concurrent_ingest() {
    let n = 64u64;
    let mut gz = GraphZeppelin::new(GzConfig::in_ram(n)).expect("system");
    for i in 0..n as u32 - 1 {
        if i % 3 != 0 {
            gz.edge_update(i, i + 1);
        }
    }

    let epoch = gz.begin_epoch().expect("seal");
    let reference = gz.spanning_forest_streaming().expect("stop-the-world reference");

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            // Repeated folds while batches land: each must pin the seal.
            for pass in 0..6 {
                let got = epoch.spanning_forest().expect("epoch query");
                assert_eq!(got.labels, reference.labels, "labels moved (pass {pass})");
                assert_eq!(got.forest, reference.forest, "forest moved (pass {pass})");
                assert_eq!(got.rounds_used, reference.rounds_used, "rounds moved (pass {pass})");
                assert_eq!(
                    got.sketch_failures, reference.sketch_failures,
                    "failures moved (pass {pass})"
                );
            }
        });

        // 12 concurrent batches rewriting much of the graph.
        for batch in 0..12u32 {
            for i in 0..16u32 {
                let u = (batch * 5 + i * 7) % n as u32;
                let v = (batch * 11 + i * 13 + 1) % n as u32;
                if u != v {
                    gz.edge_update(u, v);
                }
            }
            gz.flush();
        }
        handle.join().expect("query thread");
    });

    assert!(epoch.captured_groups() > 0, "concurrent batches must have captured pre-images");
    // The live system answers for the moved stream, not the seal.
    let live = gz.spanning_forest_streaming().expect("live query");
    assert_ne!(live.labels, reference.labels, "stream should have moved");
}

/// Same stress against a shard fleet: the `ShardedEpoch` handle shares the
/// transport with the coordinator, so gathers and ingestion interleave at
/// message granularity — and the pinned answer still must not move.
#[test]
fn sharded_epoch_query_is_stable_under_concurrent_ingest() {
    let n = 48u64;
    let mut gz =
        ShardedGraphZeppelin::in_process(ShardConfig::in_ram(n, 3)).expect("sharded system");
    for i in 0..n as u32 - 1 {
        if i % 4 != 0 {
            gz.update(i, i + 1, false).expect("routed update");
        }
    }

    let epoch = gz.begin_epoch().expect("seal");
    let reference = gz.spanning_forest_streaming().expect("stop-the-world reference");

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            for pass in 0..4 {
                let got = epoch.spanning_forest().expect("epoch query");
                assert_eq!(got.labels, reference.labels, "labels moved (pass {pass})");
                assert_eq!(got.forest, reference.forest, "forest moved (pass {pass})");
            }
        });

        for batch in 0..10u32 {
            for i in 0..12u32 {
                let u = (batch * 7 + i * 5) % n as u32;
                let v = (batch * 3 + i * 11 + 1) % n as u32;
                if u != v {
                    gz.update(u, v, false).expect("routed update");
                }
            }
            gz.flush().expect("flush");
        }
        handle.join().expect("query thread");
    });

    drop(epoch);
    let live = gz.spanning_forest_streaming().expect("live query");
    assert_ne!(live.labels, reference.labels, "stream should have moved");
    gz.shutdown().expect("clean shutdown");
}

/// Reclamation: the overlay starts empty, grows only on first-touch (each
/// group captured at most once per epoch, so re-dirtying the same groups is
/// free), and a fresh epoch after the old one drops starts from zero again
/// — repeated seal/ingest/query/drop cycles hold resident bytes flat
/// instead of accumulating.
#[test]
fn epoch_overlay_is_bounded_and_reclaimed() {
    let n = 32u64;
    let everything: Vec<(u32, u32, bool)> = (0..n as u32 - 1).map(|i| (i, i + 1, false)).collect();

    let mut gz = GraphZeppelin::new(GzConfig::in_ram(n)).expect("system");
    ingest_single(&mut gz, &everything);

    let mut per_cycle = Vec::new();
    for cycle in 0..4 {
        let epoch = gz.begin_epoch().expect("seal");
        assert_eq!(epoch.overlay_resident_bytes(), 0, "fresh epoch holds nothing (cycle {cycle})");
        assert_eq!(epoch.captured_groups(), 0, "fresh epoch pins nothing (cycle {cycle})");
        let reference = gz.spanning_forest_streaming().expect("reference");

        // Dirty every node the stream knows about.
        ingest_single(&mut gz, &everything);
        gz.flush();
        let first_touch = epoch.overlay_resident_bytes();
        assert!(first_touch > 0, "post-seal writes must capture (cycle {cycle})");

        // Re-dirtying the same groups must not grow the overlay: capture
        // happens at most once per (epoch, group).
        ingest_single(&mut gz, &everything);
        gz.flush();
        assert_eq!(
            epoch.overlay_resident_bytes(),
            first_touch,
            "re-dirtying captured groups grew the overlay (cycle {cycle})"
        );

        let got = epoch.spanning_forest().expect("epoch query");
        assert_eq!(got.labels, reference.labels, "cycle {cycle}");
        per_cycle.push(first_touch);
        // `epoch` drops here: the captured pre-images are freed.
    }

    // No cross-cycle accumulation: every cycle captured exactly the same
    // amount, because each epoch starts from an empty overlay.
    assert!(per_cycle.windows(2).all(|w| w[0] == w[1]), "resident bytes drifted: {per_cycle:?}");
}

/// With no epoch live (all handles dropped), ingestion must not capture
/// anything — the copy-on-write machinery gets out of the way entirely.
#[test]
fn dropped_epochs_stop_capturing() {
    let n = 16u64;
    let mut gz = GraphZeppelin::new(GzConfig::in_ram(n)).expect("system");
    gz.edge_update(0, 1);

    let epoch = gz.begin_epoch().expect("seal");
    let second = gz.begin_epoch().expect("second seal");
    assert!(second.id() > epoch.id(), "epoch ids are monotonic");
    drop(epoch);
    drop(second);

    // Both readers are gone; a later epoch sees a quiet overlay even
    // though the stream keeps moving between its seal and its queries.
    let third = gz.begin_epoch().expect("third seal");
    for i in 0..n as u32 - 1 {
        gz.edge_update(i, i + 1);
    }
    gz.flush();
    assert!(third.captured_groups() > 0, "live epoch still captures");
}

mod epoch_equivalence_proptests {
    use super::*;
    use proptest::prelude::*;

    fn toggles(n: u64, raw: Vec<(u32, u32)>) -> Vec<(u32, u32, bool)> {
        raw.into_iter()
            .map(|(a, b)| ((a as u64 % n) as u32, (b as u64 % n) as u32))
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (a, b, false))
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// The keystone: on arbitrary toggle streams split at an arbitrary
        /// point, "query at epoch E" equals "stop-the-world query right
        /// after E's flush" bit for bit — labels, forest, rounds used,
        /// sketch failures — across Ram/Disk stores × shard counts {1, 3}
        /// × query_threads {1, 4}, with the suffix of the stream ingested
        /// between the seal and the epoch queries.
        #[test]
        fn epoch_query_equals_stop_the_world_at_seal(
            n in 4u64..24,
            raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..100),
            split in 0usize..100
        ) {
            let updates = toggles(n, raw);
            let cut = split.min(updates.len());
            let (prefix, suffix) = updates.split_at(cut);

            // RAM store.
            let mut ram = GraphZeppelin::new(GzConfig::in_ram(n)).unwrap();
            ingest_single(&mut ram, prefix);
            let mut epoch = ram.begin_epoch().unwrap();
            let reference = ram.spanning_forest_streaming().unwrap();
            ingest_single(&mut ram, suffix);
            ram.flush();
            for threads in [1usize, 4] {
                epoch.set_query_threads(threads);
                let got = epoch.spanning_forest().unwrap();
                prop_assert_eq!(&reference.labels, &got.labels, "ram labels t={}", threads);
                prop_assert_eq!(&reference.forest, &got.forest, "ram forest t={}", threads);
                prop_assert_eq!(reference.rounds_used, got.rounds_used, "ram rounds t={}", threads);
                prop_assert_eq!(
                    reference.sketch_failures, got.sketch_failures,
                    "ram failures t={}", threads
                );
            }
            drop(epoch);

            // Disk store under a tight cache: captures ride the clean→dirty
            // transition and epoch reads prefer the overlay.
            let dir = TempDir::new("gz-epoch-prop");
            let mut disk_cfg = GzConfig::in_ram(n);
            disk_cfg.store = StoreBackend::Disk {
                dir: dir.path().to_path_buf(),
                block_bytes: 512,
                cache_groups: 2,
            };
            let mut disk = GraphZeppelin::new(disk_cfg).unwrap();
            ingest_single(&mut disk, prefix);
            let mut epoch = disk.begin_epoch().unwrap();
            let disk_reference = disk.spanning_forest_streaming().unwrap();
            prop_assert_eq!(&reference.labels, &disk_reference.labels, "disk seal-time labels");
            ingest_single(&mut disk, suffix);
            disk.flush();
            for threads in [1usize, 4] {
                epoch.set_query_threads(threads);
                let got = epoch.spanning_forest().unwrap();
                prop_assert_eq!(&reference.labels, &got.labels, "disk labels t={}", threads);
                prop_assert_eq!(&reference.forest, &got.forest, "disk forest t={}", threads);
                prop_assert_eq!(
                    reference.rounds_used, got.rounds_used,
                    "disk rounds t={}", threads
                );
                prop_assert_eq!(
                    reference.sketch_failures, got.sketch_failures,
                    "disk failures t={}", threads
                );
            }
            drop(epoch);

            // Shard fleets: per-shard seals gathered through the transport.
            for shards in [1u32, 3] {
                let mut gz = ShardedGraphZeppelin::in_process(ShardConfig::in_ram(n, shards))
                    .unwrap();
                ingest_sharded(&mut gz, prefix);
                let mut epoch = gz.begin_epoch().unwrap();
                ingest_sharded(&mut gz, suffix);
                gz.flush().unwrap();
                for threads in [1usize, 4] {
                    epoch.set_query_threads(threads);
                    let got = epoch.spanning_forest().unwrap();
                    prop_assert_eq!(
                        &reference.labels, &got.labels,
                        "labels {} shards t={}", shards, threads
                    );
                    prop_assert_eq!(
                        &reference.forest, &got.forest,
                        "forest {} shards t={}", shards, threads
                    );
                    prop_assert_eq!(
                        reference.rounds_used, got.rounds_used,
                        "rounds {} shards t={}", shards, threads
                    );
                    prop_assert_eq!(
                        reference.sketch_failures, got.sketch_failures,
                        "failures {} shards t={}", shards, threads
                    );
                }
                drop(epoch);
                gz.shutdown().unwrap();
            }
        }
    }
}
