//! End-to-end integration: full streams through the full pipeline, checked
//! against exact connectivity on the final graph.

use graph_zeppelin::{GraphZeppelin, GzConfig};
use gz_graph::connectivity::{connected_components_dsu, is_spanning_forest};
use gz_graph::AdjacencyList;
use gz_stream::{Dataset, StreamifyConfig, UpdateKind};
use gz_testutil::{TempDir, TempPath};

/// Stream a dataset through a GraphZeppelin instance and return
/// (final-graph oracle, gz labels, gz forest validity).
fn run_dataset(
    dataset: &Dataset,
    config: GzConfig,
    stream_seed: u64,
) -> (Vec<u32>, Vec<u32>, bool) {
    let stream = dataset.stream(stream_seed, &StreamifyConfig::default());
    let mut gz = GraphZeppelin::new(config).expect("valid config");
    let mut oracle = AdjacencyList::new(dataset.num_vertices as usize);
    for upd in &stream.updates {
        gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
        oracle.toggle(upd.edge());
    }
    let cc = gz.connected_components().expect("query failed");
    let forest_ok = is_spanning_forest(&oracle, cc.spanning_forest());
    (connected_components_dsu(&oracle), cc.labels().to_vec(), forest_ok)
}

#[test]
fn dense_kron_stream_matches_oracle() {
    let dataset = Dataset::kron(8);
    let (truth, labels, forest_ok) =
        run_dataset(&dataset, GzConfig::in_ram(dataset.num_vertices), 1);
    assert_eq!(labels, truth);
    assert!(forest_ok, "returned forest is not a spanning forest");
}

#[test]
fn sparse_er_stream_matches_oracle() {
    let dataset = gz_stream::catalog::tiny_standins()
        .into_iter()
        .find(|d| d.name.starts_with("p2p"))
        .unwrap();
    let (truth, labels, forest_ok) =
        run_dataset(&dataset, GzConfig::in_ram(dataset.num_vertices), 2);
    assert_eq!(labels, truth);
    assert!(forest_ok);
}

#[test]
fn skewed_powerlaw_stream_matches_oracle() {
    let dataset = Dataset {
        name: "powerlaw-test".into(),
        num_vertices: 600,
        nominal_edges: 6000,
        spec: gz_stream::GeneratorSpec::Preferential { nodes: 600, edges: 6000 },
    };
    let (truth, labels, forest_ok) =
        run_dataset(&dataset, GzConfig::in_ram(dataset.num_vertices), 3);
    assert_eq!(labels, truth);
    assert!(forest_ok);
}

#[test]
fn many_workers_still_correct() {
    let dataset = Dataset::kron(7);
    let mut config = GzConfig::in_ram(dataset.num_vertices);
    config.num_workers = 8;
    let (truth, labels, _) = run_dataset(&dataset, config, 4);
    assert_eq!(labels, truth);
}

#[test]
fn sketch_level_parallelism_still_correct() {
    let dataset = Dataset::kron(7);
    let mut config = GzConfig::in_ram(dataset.num_vertices);
    config.num_workers = 2;
    config.group_threads = 3;
    let (truth, labels, _) = run_dataset(&dataset, config, 5);
    assert_eq!(labels, truth);
}

#[test]
fn on_disk_pipeline_matches_oracle() {
    let dataset = Dataset::kron(7);
    let dir = TempDir::new("gz-e2e");
    let config = GzConfig::on_disk(dataset.num_vertices, dir.path().to_path_buf());
    let (truth, labels, forest_ok) = run_dataset(&dataset, config, 6);
    assert_eq!(labels, truth);
    assert!(forest_ok);
}

#[test]
fn stream_file_round_trip_preserves_answers() {
    // Write the stream to the binary format, read it back, and make sure
    // the replayed stream produces identical components.
    let dataset = Dataset::kron(6);
    let stream = dataset.stream(9, &StreamifyConfig::default());
    let path = TempPath::new("gz-e2e-stream", ".gzs");
    gz_stream::format::write_stream(path.path(), dataset.num_vertices, &stream.updates).unwrap();

    let mut reader = gz_stream::format::StreamReader::open(path.path()).unwrap();
    let replayed = reader.read_all().unwrap();
    assert_eq!(replayed, stream.updates);

    let mut gz = GraphZeppelin::new(GzConfig::in_ram(dataset.num_vertices)).unwrap();
    let mut oracle = AdjacencyList::new(dataset.num_vertices as usize);
    for upd in &replayed {
        gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
        oracle.toggle(upd.edge());
    }
    assert_eq!(gz.connected_components().unwrap().labels(), &connected_components_dsu(&oracle)[..]);
}

#[test]
fn repeated_full_cycles_insert_delete_everything() {
    // Insert a whole graph, delete all of it, insert it again: the final
    // answer must reflect only the final state.
    let dataset = Dataset::kron(6);
    let edges = dataset.generate(11);
    let mut gz = GraphZeppelin::new(GzConfig::in_ram(dataset.num_vertices)).unwrap();
    for e in &edges {
        gz.update(e.u(), e.v(), false);
    }
    for e in &edges {
        gz.update(e.u(), e.v(), true);
    }
    let empty = gz.connected_components().unwrap();
    assert_eq!(empty.num_components(), dataset.num_vertices as usize);

    for e in &edges {
        gz.update(e.u(), e.v(), false);
    }
    let full = gz.connected_components().unwrap();
    let oracle = AdjacencyList::from_edges(
        dataset.num_vertices as usize,
        edges.iter().map(|e| (e.u(), e.v())),
    );
    assert_eq!(full.labels(), &connected_components_dsu(&oracle)[..]);
}
