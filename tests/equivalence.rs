//! Equivalence tests: every deployment configuration of GraphZeppelin must
//! produce the *same sketch state* for the same stream — linearity makes the
//! system's answers independent of buffering, store placement, worker count,
//! locking discipline, and (with the sharding subsystem) of how the vertex
//! set is partitioned and which transport carries the batches.

use graph_zeppelin::{
    BufferStrategy, GraphZeppelin, GutterCapacity, GzConfig, LockingStrategy, ShardConfig,
    ShardedGraphZeppelin, StoreBackend,
};
use gz_stream::{Dataset, StreamifyConfig, UpdateKind};
use gz_testutil::TempDir;

fn labels_for(config: GzConfig, updates: &[gz_stream::EdgeUpdate]) -> Vec<u32> {
    let mut gz = GraphZeppelin::new(config).expect("valid config");
    for upd in updates {
        gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
    }
    gz.connected_components().expect("query").labels().to_vec()
}

fn shared_stream() -> (u64, Vec<gz_stream::EdgeUpdate>) {
    let dataset = Dataset::kron(7);
    let stream = dataset.stream(77, &StreamifyConfig::default());
    (dataset.num_vertices, stream.updates)
}

#[test]
fn buffering_strategies_equivalent() {
    let (v, updates) = shared_stream();
    let dir = TempDir::new("gz-equiv-buf");

    let mut leaf = GzConfig::in_ram(v);
    leaf.buffering = BufferStrategy::LeafOnly { capacity: GutterCapacity::SketchFactor(0.5) };

    let mut tiny = GzConfig::in_ram(v);
    tiny.buffering = BufferStrategy::LeafOnly { capacity: GutterCapacity::Updates(3) };

    let mut tree = GzConfig::in_ram(v);
    tree.buffering = BufferStrategy::GutterTree {
        buffer_bytes: 1 << 14,
        fanout: 8,
        leaf_capacity: GutterCapacity::SketchFactor(1.0),
        dir: dir.path().to_path_buf(),
    };

    let a = labels_for(leaf, &updates);
    let b = labels_for(tiny, &updates);
    let c = labels_for(tree, &updates);
    assert_eq!(a, b, "leaf vs tiny-gutter");
    assert_eq!(a, c, "leaf vs gutter-tree");
}

#[test]
fn store_backends_equivalent() {
    let (v, updates) = shared_stream();
    let dir = TempDir::new("gz-equiv-store");

    let ram = GzConfig::in_ram(v);
    let mut disk = GzConfig::in_ram(v);
    disk.store =
        StoreBackend::Disk { dir: dir.path().to_path_buf(), block_bytes: 4096, cache_groups: 4 };

    assert_eq!(labels_for(ram, &updates), labels_for(disk, &updates));
}

#[test]
fn locking_strategies_equivalent() {
    let (v, updates) = shared_stream();
    let mut direct = GzConfig::in_ram(v);
    direct.locking = LockingStrategy::Direct;
    let mut delta = GzConfig::in_ram(v);
    delta.locking = LockingStrategy::DeltaSketch;
    assert_eq!(labels_for(direct, &updates), labels_for(delta, &updates));
}

#[test]
fn worker_counts_equivalent() {
    let (v, updates) = shared_stream();
    let mut one = GzConfig::in_ram(v);
    one.num_workers = 1;
    let mut eight = GzConfig::in_ram(v);
    eight.num_workers = 8;
    assert_eq!(labels_for(one, &updates), labels_for(eight, &updates));
}

#[test]
fn group_threads_equivalent() {
    let (v, updates) = shared_stream();
    let mut g1 = GzConfig::in_ram(v);
    g1.group_threads = 1;
    let mut g4 = GzConfig::in_ram(v);
    g4.group_threads = 4;
    assert_eq!(labels_for(g1, &updates), labels_for(g4, &updates));
}

#[test]
fn update_order_irrelevant() {
    // Linearity: any permutation of the same update multiset yields the
    // same sketches, hence the same answers.
    let (v, mut updates) = shared_stream();
    let forward = labels_for(GzConfig::in_ram(v), &updates);
    updates.reverse();
    let backward = labels_for(GzConfig::in_ram(v), &updates);
    assert_eq!(forward, backward);
}

/// Which transport a sharded configuration runs over.
#[derive(Clone, Copy, Debug)]
enum Transport {
    /// Shard pipelines owned by the coordinator (queue pushes).
    InProcess,
    /// Worker threads behind Unix-socket pairs speaking the wire protocol.
    Socket,
}

fn sharded_system(config: ShardConfig, transport: Transport) -> ShardedGraphZeppelin {
    match transport {
        Transport::InProcess => ShardedGraphZeppelin::in_process(config),
        Transport::Socket => ShardedGraphZeppelin::local_socket(config),
    }
    .expect("sharded system")
}

#[test]
fn sharded_configurations_bit_identical_to_unsharded() {
    // Shard counts × transports: the gathered sketch state and the
    // connected-components output must be *bit-identical* to the unsharded
    // system on the same stream — the §8 partitioning claim, checked at
    // the byte level rather than up to answer equality.
    let (v, updates) = shared_stream();

    let mut single = GraphZeppelin::new(GzConfig::in_ram(v)).expect("single-node system");
    for upd in &updates {
        single.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
    }
    let reference_state = single.snapshot_serialized();
    let reference_labels = single.connected_components().expect("query").labels().to_vec();

    for shards in [1u32, 2, 3, 7] {
        for transport in [Transport::InProcess, Transport::Socket] {
            let mut gz = sharded_system(ShardConfig::in_ram(v, shards), transport);
            for upd in &updates {
                gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete).expect("routed update");
            }
            assert_eq!(
                gz.gather_serialized().expect("gather"),
                reference_state,
                "sketch state diverged: {shards} shards over {transport:?}"
            );
            assert_eq!(
                gz.connected_components().expect("query"),
                reference_labels,
                "labels diverged: {shards} shards over {transport:?}"
            );
            gz.shutdown().expect("clean shutdown");
        }
    }
}

#[test]
fn sharded_disk_store_bit_identical_to_unsharded() {
    // The per-shard pipeline's store is pluggable; a disk-backed shard
    // fleet must still reconstruct the exact single-node state.
    let (v, updates) = shared_stream();
    let dir = TempDir::new("gz-equiv-shard-disk");

    let mut single = GraphZeppelin::new(GzConfig::in_ram(v)).expect("single-node system");
    for upd in &updates {
        single.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
    }

    let mut config = ShardConfig::in_ram(v, 3);
    config.store =
        StoreBackend::Disk { dir: dir.path().to_path_buf(), block_bytes: 4096, cache_groups: 8 };
    let mut sharded = sharded_system(config, Transport::InProcess);
    for upd in &updates {
        sharded.update(upd.u, upd.v, upd.kind == UpdateKind::Delete).expect("routed update");
    }
    assert_eq!(sharded.gather_serialized().expect("gather"), single.snapshot_serialized());
}

#[test]
fn streaming_query_bit_identical_across_stores_and_shard_counts() {
    // The tentpole invariant: the round-driven streaming query must return
    // labels AND forest bit-identical to the snapshot query, whatever
    // serves the round slices — the RAM store, a disk store under a tight
    // cache, or a shard fleet shipping per-round frames over either
    // transport.
    let (v, updates) = shared_stream();

    let mut single = GraphZeppelin::new(GzConfig::in_ram(v)).expect("single-node system");
    for upd in &updates {
        single.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
    }
    let reference = single.spanning_forest_snapshot().expect("reference query");
    let streamed = single.spanning_forest_streaming().expect("ram streaming query");
    assert_eq!(reference.labels, streamed.labels, "ram streaming labels");
    assert_eq!(reference.forest, streamed.forest, "ram streaming forest");

    let dir = TempDir::new("gz-equiv-streamq");
    let mut disk = GzConfig::in_ram(v);
    disk.store =
        StoreBackend::Disk { dir: dir.path().to_path_buf(), block_bytes: 4096, cache_groups: 2 };
    let mut gz = GraphZeppelin::new(disk).expect("disk system");
    for upd in &updates {
        gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
    }
    let streamed = gz.spanning_forest_streaming().expect("disk streaming query");
    assert_eq!(reference.labels, streamed.labels, "disk streaming labels");
    assert_eq!(reference.forest, streamed.forest, "disk streaming forest");

    for shards in [1u32, 3] {
        for transport in [Transport::InProcess, Transport::Socket] {
            let mut gz = sharded_system(ShardConfig::in_ram(v, shards), transport);
            for upd in &updates {
                gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete).expect("routed update");
            }
            let streamed = gz.spanning_forest_streaming().expect("sharded streaming query");
            assert_eq!(
                reference.labels, streamed.labels,
                "labels diverged: {shards} shards over {transport:?}"
            );
            assert_eq!(
                reference.forest, streamed.forest,
                "forest diverged: {shards} shards over {transport:?}"
            );
            gz.shutdown().expect("clean shutdown");
        }
    }
}

mod streaming_query_proptests {
    use super::*;
    use proptest::prelude::*;

    fn toggles(n: u64, raw: Vec<(u32, u32)>) -> Vec<(u32, u32, bool)> {
        raw.into_iter()
            .map(|(a, b)| ((a as u64 % n) as u32, (b as u64 % n) as u32))
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (a, b, false))
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The parallel query engine is bit-identical to the
        /// single-threaded one on arbitrary toggle streams: labels, forest
        /// (with edge order), rounds used, and sketch-failure counts agree
        /// across query_threads {1, 2, 4} × Ram/Disk stores × shard counts
        /// {1, 3}. (Peak resident bytes legitimately differ — more workers
        /// hold more accumulators — so they are deliberately not compared.)
        #[test]
        fn parallel_query_bit_identical_across_threads_stores_shards(
            n in 4u64..28,
            raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..120)
        ) {
            let updates = toggles(n, raw);

            let mut ram = GraphZeppelin::new(GzConfig::in_ram(n)).unwrap();
            for &(u, v, d) in &updates {
                ram.update(u, v, d);
            }
            ram.set_query_threads(1);
            let reference = ram.spanning_forest_streaming().unwrap();

            let dir = TempDir::new("gz-equiv-parq-prop");
            let mut disk_cfg = GzConfig::in_ram(n);
            disk_cfg.store = StoreBackend::Disk {
                dir: dir.path().to_path_buf(),
                block_bytes: 512,
                cache_groups: 2,
            };
            let mut disk = GraphZeppelin::new(disk_cfg).unwrap();
            for &(u, v, d) in &updates {
                disk.update(u, v, d);
            }

            let mut shard_systems: Vec<_> = [1u32, 3]
                .iter()
                .map(|&shards| {
                    let mut gz = ShardedGraphZeppelin::in_process(ShardConfig::in_ram(n, shards))
                        .unwrap();
                    gz.ingest(updates.iter().copied()).unwrap();
                    (shards, gz)
                })
                .collect();

            for threads in [1usize, 2, 4] {
                ram.set_query_threads(threads);
                let got = ram.spanning_forest_streaming().unwrap();
                prop_assert_eq!(&reference.labels, &got.labels, "ram labels t={}", threads);
                prop_assert_eq!(&reference.forest, &got.forest, "ram forest t={}", threads);
                prop_assert_eq!(reference.rounds_used, got.rounds_used, "ram rounds t={}", threads);
                prop_assert_eq!(
                    reference.sketch_failures, got.sketch_failures,
                    "ram failures t={}", threads
                );

                disk.set_query_threads(threads);
                let got = disk.spanning_forest_streaming().unwrap();
                prop_assert_eq!(&reference.labels, &got.labels, "disk labels t={}", threads);
                prop_assert_eq!(&reference.forest, &got.forest, "disk forest t={}", threads);
                prop_assert_eq!(reference.rounds_used, got.rounds_used, "disk rounds t={}", threads);
                prop_assert_eq!(
                    reference.sketch_failures, got.sketch_failures,
                    "disk failures t={}", threads
                );

                for (shards, gz) in shard_systems.iter_mut() {
                    gz.set_query_threads(threads);
                    let got = gz.spanning_forest_streaming().unwrap();
                    prop_assert_eq!(
                        &reference.labels, &got.labels,
                        "labels {} shards t={}", shards, threads
                    );
                    prop_assert_eq!(
                        &reference.forest, &got.forest,
                        "forest {} shards t={}", shards, threads
                    );
                    prop_assert_eq!(
                        reference.rounds_used, got.rounds_used,
                        "rounds {} shards t={}", shards, threads
                    );
                    prop_assert_eq!(
                        reference.sketch_failures, got.sketch_failures,
                        "failures {} shards t={}", shards, threads
                    );
                }
            }
        }

        /// Streaming == snapshot, bit for bit, on arbitrary toggle streams
        /// across Ram/Disk stores and shard counts {1, 3}.
        #[test]
        fn streaming_matches_snapshot_everywhere(
            n in 4u64..28,
            raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..120)
        ) {
            let updates = toggles(n, raw);

            let mut ram = GraphZeppelin::new(GzConfig::in_ram(n)).unwrap();
            for &(u, v, d) in &updates {
                ram.update(u, v, d);
            }
            let reference = ram.spanning_forest_snapshot().unwrap();
            let ram_stream = ram.spanning_forest_streaming().unwrap();
            prop_assert_eq!(&reference.labels, &ram_stream.labels);
            prop_assert_eq!(&reference.forest, &ram_stream.forest);

            let dir = TempDir::new("gz-equiv-streamq-prop");
            let mut disk = GzConfig::in_ram(n);
            disk.store = StoreBackend::Disk {
                dir: dir.path().to_path_buf(),
                block_bytes: 512,
                cache_groups: 2,
            };
            let mut gz = GraphZeppelin::new(disk).unwrap();
            for &(u, v, d) in &updates {
                gz.update(u, v, d);
            }
            let disk_stream = gz.spanning_forest_streaming().unwrap();
            prop_assert_eq!(&reference.labels, &disk_stream.labels);
            prop_assert_eq!(&reference.forest, &disk_stream.forest);

            for shards in [1u32, 3] {
                let mut gz = ShardedGraphZeppelin::in_process(ShardConfig::in_ram(n, shards))
                    .unwrap();
                for &(u, v, d) in &updates {
                    gz.update(u, v, d).unwrap();
                }
                let sharded = gz.spanning_forest_streaming().unwrap();
                prop_assert_eq!(&reference.labels, &sharded.labels, "{} shards", shards);
                prop_assert_eq!(&reference.forest, &sharded.forest, "{} shards", shards);
            }
        }
    }
}

mod batch_kernel_proptests {
    use super::*;
    use proptest::prelude::*;

    /// Build the dup-heavy toggle stream the batch kernel's cancellation
    /// pre-pass exists for: each raw edge is optionally emitted as an
    /// insert/delete pair (cancelling inside one gutter flush with high
    /// probability) instead of a single toggle.
    fn dup_heavy_stream(n: u64, raw: Vec<(u32, u32, bool)>) -> Vec<(u32, u32, bool)> {
        let mut updates = Vec::new();
        for (a, b, pair) in raw {
            let (a, b) = ((a as u64 % n) as u32, (b as u64 % n) as u32);
            if a == b {
                continue;
            }
            updates.push((a, b, false));
            if pair {
                updates.push((a, b, true));
            }
        }
        updates
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The batched sketch-update kernel is bit-identical to per-update
        /// singles at the whole-system level: a gutter-sized configuration
        /// (batch kernel, cancellation pre-pass active) must serialize the
        /// exact same sketch state as an unbuffered configuration (every
        /// record its own batch) — across Ram/Disk stores and shard counts
        /// {1, 3}, on dup-heavy streams.
        #[test]
        fn batched_kernel_matches_singles_everywhere(
            n in 4u64..28,
            raw in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 0..100)
        ) {
            let updates = dup_heavy_stream(n, raw);

            // Reference: per-update singles (capacity-1 gutters flush every
            // record as its own batch, so the kernel's small-batch path and
            // the pre-pass both degenerate to plain single updates).
            let mut singles_cfg = GzConfig::in_ram(n);
            singles_cfg.buffering =
                BufferStrategy::LeafOnly { capacity: GutterCapacity::Updates(1) };
            let mut singles = GraphZeppelin::new(singles_cfg).unwrap();
            for &(u, v, d) in &updates {
                singles.update(u, v, d);
            }
            let reference = singles.snapshot_serialized();

            // Gutter-sized RAM batches through the column-major kernel.
            let mut ram = GraphZeppelin::new(GzConfig::in_ram(n)).unwrap();
            for &(u, v, d) in &updates {
                ram.update(u, v, d);
            }
            prop_assert_eq!(&ram.snapshot_serialized(), &reference, "ram batch != singles");

            // Disk store: the same kernel behind the group cache.
            let dir = TempDir::new("gz-equiv-kernel-prop");
            let mut disk_cfg = GzConfig::in_ram(n);
            disk_cfg.store = StoreBackend::Disk {
                dir: dir.path().to_path_buf(),
                block_bytes: 512,
                cache_groups: 2,
            };
            let mut disk = GraphZeppelin::new(disk_cfg).unwrap();
            for &(u, v, d) in &updates {
                disk.update(u, v, d);
            }
            prop_assert_eq!(&disk.snapshot_serialized(), &reference, "disk batch != singles");

            // Shard fleets route through per-shard gutter lanes before the
            // same store kernel.
            for shards in [1u32, 3] {
                let mut gz = ShardedGraphZeppelin::in_process(ShardConfig::in_ram(n, shards))
                    .unwrap();
                for &(u, v, d) in &updates {
                    gz.update(u, v, d).unwrap();
                }
                prop_assert_eq!(
                    &gz.gather_serialized().unwrap(),
                    &reference,
                    "sharded batch != singles ({} shards)",
                    shards
                );
                gz.shutdown().unwrap();
            }
        }
    }
}

mod hybrid_representation_proptests {
    use super::*;
    use proptest::prelude::*;

    /// Insert/optional-delete pairs: deletions shrink live neighbor sets,
    /// so sparse nodes hover around the promotion threshold instead of
    /// growing monotonically — the adversarial regime for the hybrid
    /// representation.
    fn churny_stream(n: u64, raw: Vec<(u32, u32, bool)>) -> Vec<(u32, u32, bool)> {
        let mut updates = Vec::new();
        for (a, b, pair) in raw {
            let (a, b) = ((a as u64 % n) as u32, (b as u64 % n) as u32);
            if a == b {
                continue;
            }
            updates.push((a, b, false));
            if pair {
                updates.push((a, b, true));
            }
        }
        updates
    }

    fn ingest(gz: &mut GraphZeppelin, updates: &[(u32, u32, bool)]) {
        for &(u, v, d) in updates {
            gz.update(u, v, d);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The tentpole equivalence oracle: a hybrid system (τ ∈ {4, 16, 64},
        /// promotion by replay) is *bit-identical* to the always-dense
        /// system (τ = 0) on arbitrary churny streams — serialized sketch
        /// state, streaming labels, and forest — across Ram/Disk stores and
        /// shard counts {1, 3}. Small universes with many updates force
        /// mid-stream promotions; delete pairs keep other nodes sparse.
        #[test]
        fn hybrid_bit_identical_to_dense_everywhere(
            n in 4u64..28,
            raw in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 0..120)
        ) {
            let updates = churny_stream(n, raw);

            let mut dense = GraphZeppelin::new(GzConfig::in_ram(n)).unwrap();
            ingest(&mut dense, &updates);
            let ref_state = dense.snapshot_serialized();
            let reference = dense.spanning_forest_streaming().unwrap();

            for tau in [4u32, 16, 64] {
                let mut ram_cfg = GzConfig::in_ram(n);
                ram_cfg.sketch_threshold = tau;
                let mut ram = GraphZeppelin::new(ram_cfg).unwrap();
                ingest(&mut ram, &updates);
                prop_assert_eq!(&ram.snapshot_serialized(), &ref_state, "ram state τ={}", tau);
                let got = ram.spanning_forest_streaming().unwrap();
                prop_assert_eq!(&reference.labels, &got.labels, "ram labels τ={}", tau);
                prop_assert_eq!(&reference.forest, &got.forest, "ram forest τ={}", tau);

                let dir = TempDir::new("gz-equiv-hybrid-prop");
                let mut disk_cfg = GzConfig::in_ram(n);
                disk_cfg.sketch_threshold = tau;
                disk_cfg.store = StoreBackend::Disk {
                    dir: dir.path().to_path_buf(),
                    block_bytes: 512,
                    cache_groups: 2,
                };
                let mut disk = GraphZeppelin::new(disk_cfg).unwrap();
                ingest(&mut disk, &updates);
                prop_assert_eq!(&disk.snapshot_serialized(), &ref_state, "disk state τ={}", tau);
                let got = disk.spanning_forest_streaming().unwrap();
                prop_assert_eq!(&reference.labels, &got.labels, "disk labels τ={}", tau);
                prop_assert_eq!(&reference.forest, &got.forest, "disk forest τ={}", tau);

                for shards in [1u32, 3] {
                    let mut cfg = ShardConfig::in_ram(n, shards);
                    cfg.sketch_threshold = tau;
                    let mut gz = ShardedGraphZeppelin::in_process(cfg).unwrap();
                    for &(u, v, d) in &updates {
                        gz.update(u, v, d).unwrap();
                    }
                    prop_assert_eq!(
                        &gz.gather_serialized().unwrap(), &ref_state,
                        "sharded state τ={} shards={}", tau, shards
                    );
                    let got = gz.spanning_forest_streaming().unwrap();
                    prop_assert_eq!(
                        &reference.labels, &got.labels,
                        "sharded labels τ={} shards={}", tau, shards
                    );
                    prop_assert_eq!(
                        &reference.forest, &got.forest,
                        "sharded forest τ={} shards={}", tau, shards
                    );
                    gz.shutdown().unwrap();
                }
            }
        }

        /// Epoch-pinned queries over *mixed* sparse/promoted state: seal
        /// mid-stream, keep ingesting the suffix (promoting more nodes),
        /// and the pinned answer must still be bit-identical to a dense
        /// system fed only the prefix — on single-node Ram and a 3-shard
        /// fleet.
        #[test]
        fn hybrid_epoch_pins_match_dense_prefix(
            n in 4u64..24,
            raw in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 4..100),
            split_pct in 20u32..80
        ) {
            let updates = churny_stream(n, raw);
            let split = updates.len() * split_pct as usize / 100;
            let (prefix, suffix) = updates.split_at(split);

            let mut dense = GraphZeppelin::new(GzConfig::in_ram(n)).unwrap();
            ingest(&mut dense, prefix);
            let reference = dense.spanning_forest_streaming().unwrap();

            let mut hybrid_cfg = GzConfig::in_ram(n);
            hybrid_cfg.sketch_threshold = 4;
            let mut hybrid = GraphZeppelin::new(hybrid_cfg).unwrap();
            ingest(&mut hybrid, prefix);
            hybrid.flush();
            let epoch = hybrid.begin_epoch().unwrap();
            ingest(&mut hybrid, suffix);
            hybrid.flush();
            let pinned = epoch.spanning_forest().unwrap();
            prop_assert_eq!(&reference.labels, &pinned.labels, "pinned ram labels");
            prop_assert_eq!(&reference.forest, &pinned.forest, "pinned ram forest");

            let mut cfg = ShardConfig::in_ram(n, 3);
            cfg.sketch_threshold = 4;
            let mut sharded = ShardedGraphZeppelin::in_process(cfg).unwrap();
            for &(u, v, d) in prefix {
                sharded.update(u, v, d).unwrap();
            }
            let epoch = sharded.begin_epoch().unwrap();
            for &(u, v, d) in suffix {
                sharded.update(u, v, d).unwrap();
            }
            sharded.flush().unwrap();
            let pinned = epoch.spanning_forest().unwrap();
            prop_assert_eq!(&reference.labels, &pinned.labels, "pinned sharded labels");
            prop_assert_eq!(&reference.forest, &pinned.forest, "pinned sharded forest");
            drop(epoch);
            sharded.shutdown().unwrap();
        }
    }
}

#[test]
fn streaming_cc_baseline_agrees_with_graphzeppelin() {
    // The prior-art system and GraphZeppelin implement the same abstract
    // algorithm; on a small graph both must agree with each other.
    let dataset = Dataset::kron(5);
    let stream = dataset.stream(5, &StreamifyConfig::default());
    let gz_labels = labels_for(GzConfig::in_ram(dataset.num_vertices), &stream.updates);

    let mut scc = graph_zeppelin::streaming_cc::StreamingCc::new(dataset.num_vertices, 9).unwrap();
    for upd in &stream.updates {
        scc.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
    }
    assert_eq!(scc.connected_components().unwrap(), gz_labels);
}
