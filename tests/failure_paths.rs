//! Failure-path integration tests: the system must degrade *detectably*,
//! never silently.

use graph_zeppelin::boruvka::boruvka_spanning_forest;
use graph_zeppelin::node_sketch::{update_index, SketchParams};
use graph_zeppelin::{GraphZeppelin, GzConfig, GzError};

#[test]
fn exhausted_round_budget_reports_algorithm_failure() {
    // One Boruvka round cannot resolve a long path; the API must surface
    // the paper's `algorithm_fails` outcome as a typed error.
    let mut config = GzConfig::in_ram(64);
    config.num_rounds = Some(1);
    let mut gz = GraphZeppelin::new(config).unwrap();
    for i in 0..63u32 {
        gz.edge_update(i, i + 1);
    }
    match gz.connected_components() {
        Err(GzError::AlgorithmFailure { rounds_used, unresolved }) => {
            assert_eq!(rounds_used, 1);
            assert!(unresolved > 0);
        }
        other => panic!("expected AlgorithmFailure, got {other:?}"),
    }
}

#[test]
fn error_messages_are_informative() {
    let err = GzError::AlgorithmFailure { rounds_used: 3, unresolved: 7 };
    let msg = err.to_string();
    assert!(msg.contains('3') && msg.contains('7'));
}

#[test]
fn corrupted_sketches_fail_loudly_not_silently() {
    // Simulate memory corruption: build per-vertex sketches, overwrite one
    // vertex's sketch with a *different vertex's* sketch (so bucket
    // checksums remain internally valid but the graph they describe is
    // inconsistent), and check Boruvka either fails or returns a partition
    // — never panics or loops forever.
    let num_nodes = 16u64;
    let params = SketchParams::new(num_nodes, 8, 7, 44);
    let mut sketches: Vec<Option<_>> =
        (0..num_nodes).map(|_| Some(params.new_node_sketch())).collect();
    // Path graph 0-1-...-15.
    for i in 0..15u32 {
        let idx = update_index(i, i + 1, num_nodes);
        sketches[i as usize].as_mut().unwrap().update_signed(idx, 1);
        sketches[i as usize + 1].as_mut().unwrap().update_signed(idx, 1);
    }
    // Corrupt: vertex 3's sketch replaced by a copy of vertex 12's.
    let stolen = sketches[12].clone();
    sketches[3] = stolen;

    match boruvka_spanning_forest(sketches, num_nodes, 8) {
        Ok(outcome) => {
            // If it "succeeds", the answer is some partition of the right
            // size — the failure mode is a wrong answer (probability-bounded
            // in normal operation), not UB.
            assert_eq!(outcome.labels.len(), num_nodes as usize);
        }
        Err(GzError::AlgorithmFailure { .. }) => {}
        Err(other) => panic!("unexpected error kind: {other}"),
    }
}

#[test]
fn invalid_configs_rejected_up_front() {
    assert!(matches!(GraphZeppelin::new(GzConfig::in_ram(0)), Err(GzError::InvalidConfig(_))));
    let mut c = GzConfig::in_ram(64);
    c.num_workers = 0;
    assert!(matches!(GraphZeppelin::new(c), Err(GzError::InvalidConfig(_))));
}

#[test]
fn disk_store_with_unwritable_dir_errors() {
    let mut c = GzConfig::in_ram(32);
    c.store = graph_zeppelin::StoreBackend::Disk {
        dir: std::path::PathBuf::from("/nonexistent_gz_dir_for_tests"),
        block_bytes: 4096,
        cache_groups: 2,
    };
    assert!(matches!(GraphZeppelin::new(c), Err(GzError::Io(_))));
}

#[test]
fn zero_budget_boruvka_fails_cleanly() {
    let params = SketchParams::new(8, 4, 7, 1);
    let mut sketches: Vec<Option<_>> = (0..8).map(|_| Some(params.new_node_sketch())).collect();
    let idx = update_index(0, 1, 8);
    sketches[0].as_mut().unwrap().update_signed(idx, 1);
    sketches[1].as_mut().unwrap().update_signed(idx, 1);
    assert!(matches!(
        boruvka_spanning_forest(sketches, 8, 0),
        Err(GzError::AlgorithmFailure { rounds_used: 0, .. })
    ));
}
