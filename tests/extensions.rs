//! Integration tests for the extension features: bipartiteness testing
//! (paper §3.1's suggested application), sharded ingestion (§8 outlook),
//! and string vertex ids (§2.2).

use graph_zeppelin::{BipartitenessTester, GraphZeppelin, GzConfig, ShardedGraphZeppelin};
use gz_graph::VertexInterner;
use gz_stream::{Dataset, StreamifyConfig, UpdateKind};

#[test]
fn bipartiteness_on_streamed_bipartite_graph() {
    // Build a random bipartite graph (edges only across halves) and stream
    // it with churn; the tester must report bipartite at the end.
    let n = 60u32;
    let edges: Vec<gz_graph::Edge> = (0..n / 2)
        .flat_map(|a| {
            ((n / 2)..n)
                .filter(move |b| (a * 7 + b) % 3 == 0)
                .map(move |b| gz_graph::Edge::new(a, b))
        })
        .collect();
    let stream = gz_stream::streamify(
        n as u64,
        &edges,
        &StreamifyConfig { disconnect_nodes: 0, ..StreamifyConfig::default() },
    );
    let mut tester = BipartitenessTester::new(n as u64, 5).unwrap();
    for upd in &stream.updates {
        tester.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
    }
    let ans = tester.query().unwrap();
    assert!(ans.bipartite, "odd components: {:?}", ans.odd_components);
}

#[test]
fn bipartiteness_detects_planted_odd_cycle() {
    let n = 40u32;
    let mut tester = BipartitenessTester::new(n as u64, 9).unwrap();
    // Bipartite background: a long even cycle.
    for i in 0..20u32 {
        tester.insert(i, (i + 1) % 20);
    }
    assert!(tester.query().unwrap().bipartite);
    // Plant a chord creating an odd cycle (chord between i and i+2 keeps it
    // even; i and i+3 makes a 4-cycle + 18-cycle... use i to i+4? A chord
    // (0, 5) creates cycles of length 6 and 16 — still even. A chord (0, 3)
    // creates length 4 and 18 — even. Odd cycle needs chord (0, k) with k
    // even: (0, 4) → cycles 5 and 17: odd!).
    tester.insert(0, 4);
    let ans = tester.query().unwrap();
    assert!(!ans.bipartite);
    // Remove it again.
    tester.delete(0, 4);
    assert!(tester.query().unwrap().bipartite);
}

#[test]
fn sharded_system_on_kron_stream_matches_single_node() {
    let dataset = Dataset::kron(6);
    let stream = dataset.stream(8, &StreamifyConfig::default());

    let mut sharded = ShardedGraphZeppelin::new(dataset.num_vertices, 4, 77).unwrap();
    let mut config = GzConfig::in_ram(dataset.num_vertices);
    config.seed = 77;
    let mut single = GraphZeppelin::new(config).unwrap();

    for upd in &stream.updates {
        let is_delete = upd.kind == UpdateKind::Delete;
        sharded.update(upd.u, upd.v, is_delete).unwrap();
        single.update(upd.u, upd.v, is_delete);
    }
    assert_eq!(
        sharded.connected_components().unwrap(),
        single.connected_components().unwrap().labels()
    );
}

#[test]
fn string_identified_stream_via_interner() {
    // A stream naming vertices by string, resolved through the interner
    // into a GraphZeppelin over a loose upper bound on the vertex count.
    let raw = [
        ("alice", "bob"),
        ("bob", "carol"),
        ("dave", "erin"),
        ("erin", "frank"),
        ("frank", "dave"),
    ];
    let mut interner = VertexInterner::new();
    let mut gz = GraphZeppelin::new(GzConfig::in_ram(64)).unwrap();
    for (a, b) in raw {
        let (ia, ib) = (interner.intern(a), interner.intern(b));
        gz.edge_update(ia, ib);
    }
    let cc = gz.connected_components().unwrap();
    let id = |s: &str| interner.get(s).unwrap();
    assert!(cc.same_component(id("alice"), id("carol")));
    assert!(cc.same_component(id("dave"), id("frank")));
    assert!(!cc.same_component(id("alice"), id("dave")));
    assert_eq!(interner.len(), 6);
}
