//! Integration-level reliability trials (§6.3, scaled down for CI).

use gz_bench::figures::reliability::trial_sweep;
use gz_stream::Dataset;

#[test]
fn kron_trials_zero_failures() {
    let report = trial_sweep(&Dataset::kron(7), 6, 3);
    assert_eq!(report.failures, 0, "{report:?}");
    // 3 checkpoints per trial, plus possibly one end-of-stream check when
    // the stream length is not a checkpoint multiple.
    assert!((18..=24).contains(&report.checks), "{report:?}");
}

#[test]
fn sparse_standin_trials_zero_failures() {
    let d = gz_stream::catalog::tiny_standins().remove(0);
    let report = trial_sweep(&d, 4, 3);
    assert_eq!(report.failures, 0, "{report:?}");
}

#[test]
fn dense_powerlaw_standin_trials_zero_failures() {
    // The densest stand-in (google-plus shape) exercises heavy skew.
    let d = gz_stream::catalog::tiny_standins()
        .into_iter()
        .find(|d| d.name.starts_with("google"))
        .unwrap();
    // Shrink further for CI cost: density is what matters.
    let d = Dataset {
        name: d.name,
        num_vertices: 300,
        nominal_edges: 9000,
        spec: gz_stream::GeneratorSpec::Preferential { nodes: 300, edges: 9000 },
    };
    let report = trial_sweep(&d, 4, 3);
    assert_eq!(report.failures, 0, "{report:?}");
}
