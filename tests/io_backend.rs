//! I/O backend equivalence: the disk store's pread and io_uring backends
//! must be *bit-for-bit* interchangeable — labels, spanning forest (with
//! edge order), and the serialized sketch state all agree, because a
//! backend only changes how bytes move, never which bytes exist. The uring
//! lanes skip with a logged reason on hosts without io_uring (seccomp'd
//! containers, old kernels); the pread lanes always run.

use graph_zeppelin::{
    uring_available, GraphZeppelin, GzConfig, IoBackendKind, QueryMode, ShardConfig,
    ShardedGraphZeppelin, StoreBackend,
};
use gz_stream::{Dataset, StreamifyConfig, UpdateKind};
use gz_testutil::TempDir;

/// A deliberately cache-starved disk config so queries actually stream
/// groups through the chosen backend instead of hitting the LRU.
fn disk_config(n: u64, dir: &TempDir, kind: IoBackendKind) -> GzConfig {
    let mut config = GzConfig::in_ram(n);
    config.store =
        StoreBackend::Disk { dir: dir.path().to_path_buf(), block_bytes: 512, cache_groups: 2 };
    config.query_mode = QueryMode::Streaming;
    config.io.kind = kind;
    config.io.queue_depth = 8;
    config
}

fn ingested(config: GzConfig, updates: &[(u32, u32, bool)]) -> GraphZeppelin {
    let mut gz = GraphZeppelin::new(config).expect("valid config");
    for &(u, v, d) in updates {
        gz.update(u, v, d);
    }
    gz
}

fn shared_stream() -> (u64, Vec<(u32, u32, bool)>) {
    let dataset = Dataset::kron(7);
    let stream = dataset.stream(31, &StreamifyConfig::default());
    let updates = stream.updates.iter().map(|u| (u.u, u.v, u.kind == UpdateKind::Delete)).collect();
    (dataset.num_vertices, updates)
}

/// Skip guard for uring lanes: false (with the reason on stderr) when the
/// host cannot run io_uring, so CI on locked-down runners stays green
/// without a silent pass.
fn uring_or_skip(test: &str) -> bool {
    if uring_available() {
        return true;
    }
    eprintln!("skipping {test}: io_uring unavailable on this host (probe failed)");
    false
}

/// The disk-query suite under both backends: identical answers and
/// identical serialized sketch state on a cache-constrained store, in both
/// query modes, with O_DIRECT layered on top of each backend.
#[test]
fn disk_queries_agree_across_backends_and_direct_mode() {
    let (n, updates) = shared_stream();

    let pread_dir = TempDir::new("gz-iobe-pread");
    let mut pread = ingested(disk_config(n, &pread_dir, IoBackendKind::Pread), &updates);
    let reference = pread.spanning_forest_streaming().expect("pread streaming query");
    let reference_state = pread.snapshot_serialized();
    let snapshot = pread.spanning_forest_snapshot().expect("pread snapshot query");
    assert_eq!(reference.labels, snapshot.labels, "pread streaming vs snapshot");

    let mut lanes: Vec<(IoBackendKind, bool, &str)> =
        vec![(IoBackendKind::Pread, true, "pread+direct")];
    if uring_or_skip("uring lanes of disk_queries_agree_across_backends_and_direct_mode") {
        lanes.push((IoBackendKind::Uring, false, "uring"));
        lanes.push((IoBackendKind::Uring, true, "uring+direct"));
    }
    for (kind, direct, label) in lanes {
        let dir = TempDir::new("gz-iobe-lane");
        let mut config = disk_config(n, &dir, kind);
        config.io.direct = direct;
        let mut gz = ingested(config, &updates);
        let got = gz.spanning_forest_streaming().expect("lane streaming query");
        assert_eq!(reference.labels, got.labels, "{label} labels");
        assert_eq!(reference.forest, got.forest, "{label} forest");
        assert_eq!(reference.rounds_used, got.rounds_used, "{label} rounds");
        assert_eq!(reference_state, gz.snapshot_serialized(), "{label} serialized state");
        let io = gz.store_io().expect("disk store has I/O counters");
        assert!(io.reads() > 0, "{label} must have streamed groups off disk");
        assert_eq!(io.submissions() > 0, io.completions() > 0, "{label} batch accounting");
    }
}

/// Batch-depth accounting through a real query: the uring backend submits
/// multi-entry batches (depth up to the configured queue depth), while
/// pread stays at depth 1 — and both deliver the same logical read count.
#[test]
fn uring_batches_where_pread_iterates() {
    if !uring_or_skip("uring_batches_where_pread_iterates") {
        return;
    }
    let (n, updates) = shared_stream();

    let pread_dir = TempDir::new("gz-iobe-depth-p");
    let mut pread = ingested(disk_config(n, &pread_dir, IoBackendKind::Pread), &updates);
    pread.spanning_forest_streaming().expect("pread query");
    let pread_io = pread.store_io().expect("pread counters");

    let uring_dir = TempDir::new("gz-iobe-depth-u");
    let mut uring = ingested(disk_config(n, &uring_dir, IoBackendKind::Uring), &updates);
    uring.spanning_forest_streaming().expect("uring query");
    let uring_io = uring.store_io().expect("uring counters");

    assert_eq!(pread.io_backend_name().as_deref(), Some("pread"));
    assert_eq!(uring.io_backend_name().as_deref(), Some("uring"));
    assert_eq!(
        (pread_io.reads(), pread_io.bytes_read()),
        (uring_io.reads(), uring_io.bytes_read()),
        "logical read accounting is backend-independent"
    );
    assert_eq!(pread_io.max_depth(), 1, "pread is one-op-per-batch by construction");
    assert!(
        uring_io.max_depth() > 1,
        "uring must batch (max depth {}, {} submissions for {} reads)",
        uring_io.max_depth(),
        uring_io.submissions(),
        uring_io.reads()
    );
    assert!(
        uring_io.submissions() < uring_io.reads(),
        "batching must need fewer ring enters than reads"
    );
}

/// `auto` resolves to a real backend on every host: uring where the probe
/// passes, pread elsewhere — never an error.
#[test]
fn auto_backend_resolves_and_answers() {
    let (n, updates) = shared_stream();
    let dir = TempDir::new("gz-iobe-auto");
    let mut auto = ingested(disk_config(n, &dir, IoBackendKind::Auto), &updates);
    let got = auto.spanning_forest_streaming().expect("auto query");

    let pread_dir = TempDir::new("gz-iobe-auto-ref");
    let mut pread = ingested(disk_config(n, &pread_dir, IoBackendKind::Pread), &updates);
    let reference = pread.spanning_forest_streaming().expect("pread query");
    assert_eq!(reference.labels, got.labels);

    let name = auto.io_backend_name().expect("disk store names its backend");
    let expect = if uring_available() { "uring" } else { "pread" };
    assert_eq!(name, expect, "auto must resolve to the probed backend");
}

mod backend_equivalence_proptests {
    use super::*;
    use proptest::prelude::*;

    fn toggles(n: u64, raw: Vec<(u32, u32)>) -> Vec<(u32, u32, bool)> {
        raw.into_iter()
            .map(|(a, b)| ((a as u64 % n) as u32, (b as u64 % n) as u32))
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (a, b, false))
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The pinning property: on arbitrary toggle streams, a uring-backed
        /// deployment is bit-identical to a pread-backed one — labels,
        /// forest (with edge order), and serialized store state — across
        /// query_threads {1, 4} × shard counts {1, 3} × epoch-pinned
        /// queries issued while ingestion continues past the seal.
        #[test]
        fn uring_bit_identical_to_pread(
            n in 4u64..28,
            raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..120),
            extra in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..40)
        ) {
            if !uring_or_skip("uring_bit_identical_to_pread") {
                return;
            }
            let updates = toggles(n, raw);
            let tail = toggles(n, extra);

            // Single-node: both backends over the same stream.
            let pread_dir = TempDir::new("gz-iobe-prop-p");
            let mut pread = ingested(disk_config(n, &pread_dir, IoBackendKind::Pread), &updates);
            let uring_dir = TempDir::new("gz-iobe-prop-u");
            let mut uring = ingested(disk_config(n, &uring_dir, IoBackendKind::Uring), &updates);

            pread.set_query_threads(1);
            let reference = pread.spanning_forest_streaming().unwrap();
            for threads in [1usize, 4] {
                uring.set_query_threads(threads);
                let got = uring.spanning_forest_streaming().unwrap();
                prop_assert_eq!(&reference.labels, &got.labels, "labels t={}", threads);
                prop_assert_eq!(&reference.forest, &got.forest, "forest t={}", threads);
                prop_assert_eq!(
                    reference.sketch_failures, got.sketch_failures,
                    "failures t={}", threads
                );
            }
            prop_assert_eq!(
                pread.snapshot_serialized(),
                uring.snapshot_serialized(),
                "serialized store state"
            );

            // Epoch-pinned: seal both, keep ingesting, and the pinned
            // queries still agree (capture-always-wins is backend-free).
            let pread_epoch = pread.begin_epoch().unwrap();
            let uring_epoch = uring.begin_epoch().unwrap();
            for &(u, v, d) in &tail {
                pread.update(u, v, d);
                uring.update(u, v, d);
            }
            pread.flush();
            uring.flush();
            let a = pread_epoch.spanning_forest().unwrap();
            let b = uring_epoch.spanning_forest().unwrap();
            prop_assert_eq!(&a.labels, &b.labels, "epoch labels");
            prop_assert_eq!(&a.forest, &b.forest, "epoch forest");
            drop(pread_epoch);
            drop(uring_epoch);

            // And the post-tail live state still matches bit for bit.
            let live_p = pread.spanning_forest_streaming().unwrap();
            let live_u = uring.spanning_forest_streaming().unwrap();
            prop_assert_eq!(&live_p.labels, &live_u.labels, "post-tail labels");
            prop_assert_eq!(
                pread.snapshot_serialized(),
                uring.snapshot_serialized(),
                "post-tail serialized state"
            );

            // Sharded: per-shard disk stores under each backend agree too.
            for shards in [1u32, 3] {
                let mut answers = Vec::new();
                for kind in [IoBackendKind::Pread, IoBackendKind::Uring] {
                    let dir = TempDir::new("gz-iobe-prop-shard");
                    let mut config = ShardConfig::in_ram(n, shards);
                    config.store = StoreBackend::Disk {
                        dir: dir.path().to_path_buf(),
                        block_bytes: 512,
                        cache_groups: 2,
                    };
                    config.io.kind = kind;
                    config.io.queue_depth = 8;
                    let mut gz = ShardedGraphZeppelin::in_process(config).unwrap();
                    gz.ingest(updates.iter().copied()).unwrap();
                    let got = gz.spanning_forest().unwrap();
                    answers.push((kind, got));
                    gz.shutdown().unwrap();
                }
                let (_, ref p) = answers[0];
                let (_, ref u) = answers[1];
                prop_assert_eq!(&p.labels, &u.labels, "sharded labels k={}", shards);
                prop_assert_eq!(&p.forest, &u.forest, "sharded forest k={}", shards);
            }
        }
    }
}
