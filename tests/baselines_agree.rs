//! Cross-system agreement: the Aspen-like and Terrace-like comparators and
//! GraphZeppelin must compute identical components on identical streams —
//! otherwise every performance comparison in the benchmark suite would be
//! comparing different problems.

use graph_zeppelin::{GraphZeppelin, GzConfig};
use gz_baselines::{AspenLike, DynamicGraphSystem, TerraceLike};
use gz_stream::{Dataset, StreamifyConfig, UpdateKind};

fn drive_all(dataset: &Dataset, seed: u64) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let stream = dataset.stream(seed, &StreamifyConfig::default());
    let mut gz = GraphZeppelin::new(GzConfig::in_ram(dataset.num_vertices)).unwrap();
    let mut aspen = AspenLike::new(dataset.num_vertices as usize);
    let mut terrace = TerraceLike::new(dataset.num_vertices as usize);
    for upd in &stream.updates {
        gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
        match upd.kind {
            UpdateKind::Insert => {
                aspen.batch_insert(&[(upd.u, upd.v)]);
                terrace.batch_insert(&[(upd.u, upd.v)]);
            }
            UpdateKind::Delete => {
                aspen.batch_delete(&[(upd.u, upd.v)]);
                terrace.batch_delete(&[(upd.u, upd.v)]);
            }
        }
    }
    (
        gz.connected_components().unwrap().labels().to_vec(),
        aspen.connected_components(),
        terrace.connected_components(),
    )
}

#[test]
fn all_systems_agree_on_dense_kron() {
    let (gz, aspen, terrace) = drive_all(&Dataset::kron(7), 21);
    assert_eq!(gz, aspen);
    assert_eq!(aspen, terrace);
}

#[test]
fn all_systems_agree_on_sparse_er() {
    let d = gz_stream::catalog::tiny_standins().remove(0);
    let (gz, aspen, terrace) = drive_all(&d, 22);
    assert_eq!(gz, aspen);
    assert_eq!(aspen, terrace);
}

#[test]
fn batched_updates_equal_single_updates_for_baselines() {
    // The paper feeds baselines large single-type batches; batching must not
    // change semantics.
    let dataset = Dataset::kron(6);
    let stream = dataset.stream(23, &StreamifyConfig::default());

    let mut singly = AspenLike::new(dataset.num_vertices as usize);
    for upd in &stream.updates {
        match upd.kind {
            UpdateKind::Insert => singly.batch_insert(&[(upd.u, upd.v)]),
            UpdateKind::Delete => singly.batch_delete(&[(upd.u, upd.v)]),
        }
    }

    // Note: reordering inserts/deletes across type boundaries is NOT sound
    // for arbitrary streams (an insert–delete–insert of one edge collapses);
    // the harness preserves order and only groups contiguous runs. Emulate
    // that here.
    let mut batched = AspenLike::new(dataset.num_vertices as usize);
    let mut run: Vec<(u32, u32)> = Vec::new();
    let mut run_is_delete = false;
    for upd in &stream.updates {
        let is_delete = upd.kind == UpdateKind::Delete;
        if is_delete != run_is_delete && !run.is_empty() {
            if run_is_delete {
                batched.batch_delete(&run);
            } else {
                batched.batch_insert(&run);
            }
            run.clear();
        }
        run_is_delete = is_delete;
        run.push((upd.u, upd.v));
    }
    if !run.is_empty() {
        if run_is_delete {
            batched.batch_delete(&run);
        } else {
            batched.batch_insert(&run);
        }
    }

    assert_eq!(singly.num_edges(), batched.num_edges());
    assert_eq!(singly.connected_components(), batched.connected_components());
}
