//! Hybrid-model I/O integration tests: the buffering layer must deliver the
//! paper's amortization (Lemma 4) and the unbuffered path must exhibit
//! Observation 1's Ω(1) I/Os per update.

use graph_zeppelin::{BufferStrategy, GraphZeppelin, GutterCapacity, GzConfig, StoreBackend};
use gz_stream::{Dataset, StreamifyConfig, UpdateKind};
use gz_testutil::TempDir;

fn scratch(tag: &str) -> TempDir {
    TempDir::new(&format!("gz-hybrid-{tag}"))
}

fn run_stream(config: GzConfig, updates: &[gz_stream::EdgeUpdate]) -> GraphZeppelin {
    let mut gz = GraphZeppelin::new(config).expect("valid config");
    for upd in updates {
        gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
    }
    gz.flush();
    gz
}

#[test]
fn buffering_amortizes_store_io() {
    let dataset = Dataset::kron(7);
    let stream = dataset.stream(3, &StreamifyConfig::default());
    let dir = scratch("amortize");

    let disk = |buffering: BufferStrategy| {
        let mut c = GzConfig::in_ram(dataset.num_vertices);
        c.store = StoreBackend::Disk {
            dir: dir.path().to_path_buf(),
            block_bytes: 1 << 13,
            cache_groups: 4,
        };
        c.buffering = buffering;
        c
    };

    let unbuffered = run_stream(
        disk(BufferStrategy::LeafOnly { capacity: GutterCapacity::Updates(1) }),
        &stream.updates,
    );
    let buffered = run_stream(
        disk(BufferStrategy::LeafOnly { capacity: GutterCapacity::SketchFactor(2.0) }),
        &stream.updates,
    );

    let io_unbuffered = unbuffered.store_io().unwrap().total_ops();
    let io_buffered = buffered.store_io().unwrap().total_ops();
    let n = stream.updates.len() as u64;

    // Observation 1: unbuffered ≈ Ω(1) I/Os per update (2 node sketches per
    // update, tight cache).
    assert!(io_unbuffered >= n, "unbuffered: {io_unbuffered} ops for {n} updates (expected ≥ n)");
    // Lemma 4: buffered is amortized far below one op per update.
    assert!((io_buffered as f64) < 0.5 * n as f64, "buffered: {io_buffered} ops for {n} updates");
}

#[test]
fn gutter_tree_writes_are_batched() {
    let dataset = Dataset::kron(7);
    let stream = dataset.stream(4, &StreamifyConfig::default());
    let dir = scratch("tree");
    let mut c = GzConfig::in_ram(dataset.num_vertices);
    c.buffering = BufferStrategy::GutterTree {
        buffer_bytes: 1 << 14,
        fanout: 8,
        leaf_capacity: GutterCapacity::SketchFactor(1.0),
        dir: dir.path().to_path_buf(),
    };
    let gz = run_stream(c, &stream.updates);
    let tree_io = gz.gutter_io().expect("gutter tree counters");
    let n = stream.updates.len() as u64;
    // Each update enters the tree once (two directed records), and the tree
    // moves records in buffer-sized chunks: ops ≪ records.
    assert!(tree_io.total_ops() < n / 2, "tree: {} ops for {n} updates", tree_io.total_ops());
    // And the bytes moved are bounded by a small multiple of the record
    // volume times the tree depth.
    let record_volume = 2 * n * 8;
    assert!(
        tree_io.bytes_written() <= record_volume * 4,
        "tree wrote {} bytes for {record_volume} bytes of records",
        tree_io.bytes_written()
    );
}

#[test]
fn streaming_query_io_bounded_under_constrained_cache() {
    // The low-RAM query path at a pinned cache budget (cache_groups = 2):
    // a streaming query issues at most one group read per (group, round)
    // pair — `num_groups × rounds_used` reads — and moves strictly fewer
    // bytes than the snapshot query's full-store scan, while returning
    // bit-identical answers.
    let dataset = Dataset::kron(6);
    let stream = dataset.stream(5, &StreamifyConfig::default());
    let dir = scratch("stream-query");
    let mut c = GzConfig::in_ram(dataset.num_vertices);
    c.store =
        StoreBackend::Disk { dir: dir.path().to_path_buf(), block_bytes: 1 << 13, cache_groups: 2 };
    let mut gz = run_stream(c, &stream.updates);
    let io = gz.store_io().unwrap();

    let (reads_before, bytes_before) = (io.reads(), io.bytes_read());
    let streamed = gz.spanning_forest_streaming().unwrap();
    let stream_reads = io.reads() - reads_before;
    let stream_bytes = io.bytes_read() - bytes_before;

    let groups = gz.store().num_groups() as u64;
    assert!(groups > 2, "want more groups ({groups}) than the cache budget");
    assert!(
        stream_reads <= groups * streamed.rounds_used as u64,
        "streaming query did {stream_reads} group-reads; \
         bound is {groups} groups × {} rounds",
        streamed.rounds_used
    );

    let bytes_before = io.bytes_read();
    let snapshot = gz.spanning_forest_snapshot().unwrap();
    let snap_bytes = io.bytes_read() - bytes_before;
    assert_eq!(snapshot.labels, streamed.labels, "query modes must agree");
    assert_eq!(snapshot.forest, streamed.forest, "query modes must agree");
    assert!(
        stream_bytes < snap_bytes,
        "streaming read {stream_bytes} bytes, snapshot {snap_bytes}"
    );
    assert!(
        streamed.peak_sketch_bytes < snapshot.peak_sketch_bytes,
        "streaming resident {} must undercut snapshot {}",
        streamed.peak_sketch_bytes,
        snapshot.peak_sketch_bytes
    );
}

#[test]
fn query_scans_disk_store_once_per_snapshot() {
    let dataset = Dataset::kron(6);
    let stream = dataset.stream(5, &StreamifyConfig::default());
    let dir = scratch("query");
    let mut c = GzConfig::in_ram(dataset.num_vertices);
    c.store =
        StoreBackend::Disk { dir: dir.path().to_path_buf(), block_bytes: 1 << 13, cache_groups: 2 };
    let mut gz = run_stream(c, &stream.updates);
    let io = gz.store_io().unwrap();
    let before = io.bytes_read();
    let _ = gz.connected_components().unwrap();
    let after = io.bytes_read();
    // The snapshot reads each node group at most once: bounded by the full
    // store size (plus a cache's worth of slack).
    let store_bytes = gz.sketch_bytes() as u64;
    assert!(
        after - before <= store_bytes + store_bytes / 4,
        "query read {} bytes for a {}-byte store",
        after - before,
        store_bytes
    );
}
