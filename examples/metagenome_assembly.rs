//! Clustering reads in a (simulated) metagenome assembly.
//!
//! Metagenome assembly is one of the paper's headline applications (§1,
//! citing extreme-scale assemblers): reads overlap, the overlap graph's
//! connected components are candidate genomes/contigs, and overlap edges
//! are *retracted* when deeper analysis reveals them to be spurious
//! (repeats, chimeric reads) — a naturally insert+delete workload.
//!
//! This example synthesizes `SPECIES` genomes' worth of reads, streams
//! overlap edges (true overlaps within a species plus spurious cross-species
//! overlaps), then deletes the spurious ones and watches the component count
//! recover the species count.
//!
//! ```sh
//! cargo run --release -p gz-bench --example metagenome_assembly
//! ```

use graph_zeppelin::{GraphZeppelin, GzConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SPECIES: u32 = 12;
const READS_PER_SPECIES: u32 = 400;
const READS: u64 = (SPECIES * READS_PER_SPECIES) as u64;

fn species_of(read: u32) -> u32 {
    read / READS_PER_SPECIES
}

fn main() {
    let mut gz = GraphZeppelin::new(GzConfig::in_ram(READS)).expect("valid config");
    let mut rng = SmallRng::seed_from_u64(7);

    // True overlaps: each read overlaps a handful of its species-mates
    // (consecutive reads along the genome, plus some long-range repeats).
    for read in 0..READS as u32 {
        let s = species_of(read);
        let base = s * READS_PER_SPECIES;
        let next = base + (read - base + 1) % READS_PER_SPECIES;
        gz.edge_update(read, next);
        if rng.gen::<f64>() < 0.2 {
            let other = base + rng.gen_range(0..READS_PER_SPECIES);
            if other != read {
                gz.edge_update(read, other);
            }
        }
    }

    // Spurious cross-species overlaps from repetitive sequence: these
    // wrongly glue genomes together.
    let mut spurious = Vec::new();
    for _ in 0..SPECIES * 3 {
        let a = rng.gen_range(0..READS as u32);
        let b = rng.gen_range(0..READS as u32);
        if a != b && species_of(a) != species_of(b) && !spurious.contains(&(a.min(b), a.max(b))) {
            spurious.push((a.min(b), a.max(b)));
            gz.edge_update(a, b);
        }
    }

    let cc = gz.connected_components().expect("query");
    println!(
        "after naive overlap detection: {} contigs (true species: {SPECIES})",
        cc.num_components()
    );
    assert!(cc.num_components() < SPECIES as usize, "repeats glued some genomes");

    // Error correction: retract the spurious overlaps (edge deletions).
    for (a, b) in spurious {
        gz.update(a, b, true);
    }

    let cc = gz.connected_components().expect("query");
    println!("after repeat resolution:        {} contigs", cc.num_components());
    assert_eq!(cc.num_components(), SPECIES as usize);

    // Report contig sizes from the labeling.
    let mut sizes = std::collections::HashMap::new();
    for v in 0..READS as u32 {
        *sizes.entry(cc.label(v)).or_insert(0u32) += 1;
    }
    let mut sizes: Vec<u32> = sizes.into_values().collect();
    sizes.sort_unstable();
    println!("contig sizes: {sizes:?}");
    println!(
        "\n{} overlap updates processed in {} bytes of sketches",
        gz.updates_ingested(),
        gz.sketch_bytes()
    );
}
