//! Tracking communities in a dynamic social network.
//!
//! The paper's motivating dynamic workload (§1): friendships form and
//! dissolve, and an analyst wants the community structure *now* — without
//! storing the full graph. This example simulates a growth-plus-churn
//! network and shows component counts converging as the network densifies,
//! then fragmenting under heavy deletion ("the great unfriending").
//!
//! ```sh
//! cargo run --release -p gz-bench --example social_network
//! ```

use graph_zeppelin::{GraphZeppelin, GzConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const USERS: u64 = 4096;

fn main() {
    let mut gz = GraphZeppelin::new(GzConfig::in_ram(USERS)).expect("valid config");
    let mut rng = SmallRng::seed_from_u64(2026);

    // Live friendship set mirrored locally so the simulation knows what it
    // can delete. (The mirror is the *simulation's* state; GraphZeppelin
    // itself only sees the stream.)
    let mut friendships: Vec<(u32, u32)> = Vec::new();

    println!("phase 1: growth with churn");
    for step in 1..=5u32 {
        for _ in 0..20_000 {
            if !friendships.is_empty() && rng.gen::<f64>() < 0.15 {
                // Unfriend a random existing pair.
                let i = rng.gen_range(0..friendships.len());
                let (a, b) = friendships.swap_remove(i);
                gz.update(a, b, true);
            } else {
                // Preferential-flavored friend formation: half the time
                // attach near a hub (low ids), otherwise uniform.
                let a = if rng.gen::<bool>() {
                    rng.gen_range(0..USERS as u32 / 16)
                } else {
                    rng.gen_range(0..USERS as u32)
                };
                let b = rng.gen_range(0..USERS as u32);
                if a != b && !friendships.contains(&(a.min(b), a.max(b))) {
                    friendships.push((a.min(b), a.max(b)));
                    gz.update(a, b, false);
                }
            }
        }
        let cc = gz.connected_components().expect("query");
        println!(
            "  step {step}: {:>6} friendships, {:>4} communities (largest label of user 0: {})",
            friendships.len(),
            cc.num_components(),
            cc.label(0)
        );
    }

    println!("phase 2: mass unfriending of the hubs");
    friendships.retain(|&(a, b)| {
        let touches_hub = a < USERS as u32 / 16 || b < USERS as u32 / 16;
        if touches_hub {
            gz.update(a, b, true);
        }
        !touches_hub
    });
    let cc = gz.connected_components().expect("query");
    println!(
        "  after hub removal: {:>6} friendships, {:>4} communities",
        friendships.len(),
        cc.num_components()
    );
    println!(
        "\nstream total: {} updates through {} bytes of sketches",
        gz.updates_ingested(),
        gz.sketch_bytes()
    );
}
