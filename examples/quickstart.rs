//! Quickstart: stream a small dynamic graph through GraphZeppelin and query
//! its connected components.
//!
//! ```sh
//! cargo run --release -p gz-bench --example quickstart
//! ```

use graph_zeppelin::{GraphZeppelin, GzConfig};

fn main() {
    // A system for a graph on up to 1024 vertices, all defaults: sketches in
    // RAM, leaf-only gutters at half the node-sketch size, 4 Graph Workers.
    let mut gz = GraphZeppelin::new(GzConfig::in_ram(1024)).expect("valid config");

    // Build two communities joined by a bridge.
    for i in 0..10u32 {
        gz.edge_update(i, (i + 1) % 10); // cycle A: vertices 0..10
        gz.edge_update(100 + i, 100 + (i + 1) % 10); // cycle B: 100..110
    }
    gz.edge_update(5, 105); // the bridge

    let cc = gz.connected_components().expect("query");
    println!("with the bridge:    {} components", cc.num_components());
    assert!(cc.same_component(0, 100));

    // Dynamic deletion: drop the bridge. Over Z_2 a second toggle of the
    // same edge IS the deletion; the explicit form is `update(.., true)`.
    gz.update(5, 105, true);

    let cc = gz.connected_components().expect("query");
    println!("without the bridge: {} components", cc.num_components());
    assert!(!cc.same_component(0, 100));

    // The spanning forest witnesses connectivity (the streaming problem's
    // required output format).
    let forest = cc.spanning_forest();
    println!("spanning forest edges: {}", forest.len());
    println!(
        "memory: {} bytes of sketches for a {}-vertex universe ({} updates ingested)",
        gz.sketch_bytes(),
        gz.config().num_nodes,
        gz.updates_ingested()
    );
}
