//! Multi-process sharded ingestion: the paper's §8 cluster outlook as a
//! runnable demo.
//!
//! The example re-executes itself as shard-worker OS processes (so it is
//! self-contained under `cargo run --example`): each worker binds an
//! ephemeral TCP port, announces it on stdout, builds its shard pipeline,
//! and serves the wire-protocol event loop. The parent process plays the
//! coordinator — routing a Kronecker stream through the batching
//! [`ShardRouter`]-backed system over [`SocketTransport`] — then verifies
//! that the gathered sketch state and the connected-components answer are
//! **bit-identical** to a single-node [`GraphZeppelin`] fed the same
//! stream.
//!
//! ```sh
//! cargo run --release -p gz_bench --example multi_process_shards
//! ```
//!
//! The same topology can be assembled by hand with the CLI:
//!
//! ```sh
//! gz shard-worker --listen 127.0.0.1:7001 --nodes 256 --shards 2 --index 0 &
//! gz shard-worker --listen 127.0.0.1:7002 --nodes 256 --shards 2 --index 1 &
//! gz components stream.gzs --shards 2 --connect 127.0.0.1:7001,127.0.0.1:7002
//! ```

use graph_zeppelin::{
    serve_shard_connection, GraphZeppelin, GzConfig, ShardConfig, ShardPipeline,
    ShardedGraphZeppelin, SocketTransport,
};
use gz_stream::{Dataset, StreamifyConfig, UpdateKind};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::process::{Command, Stdio};

const KRON_SCALE: u32 = 7;
const NUM_NODES: u64 = 1 << KRON_SCALE;
const NUM_SHARDS: u32 = 3;
const SEED: u64 = 0xC0FFEE;

fn shard_config() -> ShardConfig {
    let mut config = ShardConfig::in_ram(NUM_NODES, NUM_SHARDS);
    config.seed = SEED;
    config
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() >= 3 && args[1] == "shard-worker" {
        run_worker(args[2].parse().expect("shard index"));
    } else {
        run_coordinator();
    }
}

/// Child role: serve one shard over TCP until the coordinator shuts us down.
fn run_worker(index: u32) {
    let config = shard_config();
    let pipeline = ShardPipeline::new(&config, index).expect("shard pipeline");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let port = listener.local_addr().expect("local addr").port();
    // The parent parses this line to learn our ephemeral port.
    println!("PORT {port}");
    std::io::stdout().flush().expect("flush");

    let (mut stream, _) = listener.accept().expect("accept");
    stream.set_nodelay(true).expect("nodelay");
    let stats = serve_shard_connection(&mut stream, &pipeline, config.params_digest())
        .expect("serve shard");
    println!(
        "DONE shard {index}: {} batches / {} records applied, {} flushes, {} gathers",
        stats.batches, stats.records, stats.flushes, stats.gathers
    );
}

/// Parent role: spawn the workers, ingest, query, verify bit-identity.
fn run_coordinator() {
    let exe = std::env::current_exe().expect("current exe");
    let mut children = Vec::new();
    let mut addrs = Vec::new();
    for index in 0..NUM_SHARDS {
        let mut child = Command::new(&exe)
            .arg("shard-worker")
            .arg(index.to_string())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn shard worker");
        let mut reader = BufReader::new(child.stdout.take().expect("child stdout"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read port line");
        let port: u16 = line
            .trim()
            .strip_prefix("PORT ")
            .and_then(|p| p.parse().ok())
            .unwrap_or_else(|| panic!("bad port announcement: {line:?}"));
        addrs.push(format!("127.0.0.1:{port}"));
        children.push((child, reader));
    }
    println!("spawned {NUM_SHARDS} shard-worker processes at {addrs:?}");

    // One stream, two systems.
    let dataset = Dataset::kron(KRON_SCALE);
    let stream = dataset.stream(SEED, &StreamifyConfig::default());
    println!("streaming {} ({} updates)", dataset.name, stream.updates.len());

    let config = shard_config();
    let transport = SocketTransport::connect_tcp(&addrs, config.params_digest())
        .expect("connect to shard workers");
    let mut sharded =
        ShardedGraphZeppelin::with_transport(config, Box::new(transport)).expect("coordinator");

    let mut single_config = GzConfig::in_ram(NUM_NODES);
    single_config.seed = SEED;
    let mut single = GraphZeppelin::new(single_config).expect("single-node system");

    for upd in &stream.updates {
        let is_delete = upd.kind == UpdateKind::Delete;
        sharded.update(upd.u, upd.v, is_delete).expect("sharded update");
        single.update(upd.u, upd.v, is_delete);
    }

    // The §8 claim, checked at the bit level: gathering the distributed
    // sketches reconstructs the single-node state exactly.
    let gathered = sharded.gather_serialized().expect("gather");
    let reference = single.snapshot_serialized();
    assert_eq!(gathered, reference, "gathered sketch state must be bit-identical");

    let sharded_labels = sharded.connected_components().expect("sharded query");
    let single_labels = single.connected_components().expect("single query").labels().to_vec();
    assert_eq!(sharded_labels, single_labels, "answers must match");

    let components = sharded_labels.iter().collect::<std::collections::HashSet<_>>().len();
    println!(
        "{} updates over {} worker processes: {} components, {} batches shipped",
        sharded.updates_ingested(),
        NUM_SHARDS,
        components,
        sharded.batches_shipped(),
    );
    println!("sketch state bit-identical to the single-node system across {NUM_NODES} nodes");

    sharded.shutdown().expect("shutdown");
    for (mut child, mut reader) in children {
        let mut rest = String::new();
        reader.read_to_string(&mut rest).expect("drain child stdout");
        let status = child.wait().expect("wait for child");
        assert!(status.success(), "shard worker exited with {status}");
        print!("{rest}");
    }
    println!("all shard workers exited cleanly");
}
