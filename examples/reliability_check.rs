//! A miniature of the paper's §6.3 reliability experiment.
//!
//! Streams a dataset simultaneously into GraphZeppelin and an exact
//! adjacency-matrix mirror, comparing partitions at periodic checkpoints.
//! The sketch algorithm has failure probability ≤ 1/V^c; the paper observed
//! zero failures in 5000 trials, and so should this run.
//!
//! ```sh
//! cargo run --release -p gz-bench --example reliability_check -- 20
//! ```

use graph_zeppelin::{GraphZeppelin, GzConfig};
use gz_graph::connectivity::same_partition;
use gz_graph::AdjacencyMatrix;
use gz_stream::{Dataset, StreamifyConfig, UpdateKind};

fn main() {
    let trials: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10);

    let dataset = Dataset::kron(8);
    let mut failures = 0usize;
    let mut checks = 0usize;

    for trial in 0..trials {
        let stream = dataset.stream(trial, &StreamifyConfig::default());
        let mut config = GzConfig::in_ram(dataset.num_vertices);
        config.seed = 0xACE0 ^ trial; // fresh sketch randomness each trial
        let mut gz = GraphZeppelin::new(config).expect("valid config");
        let mut mirror = AdjacencyMatrix::new(dataset.num_vertices);

        let checkpoint = (stream.updates.len() / 4).max(1);
        for (i, upd) in stream.updates.iter().enumerate() {
            gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
            mirror.toggle(upd.edge());
            if (i + 1) % checkpoint == 0 || i + 1 == stream.updates.len() {
                checks += 1;
                let ok = match gz.connected_components() {
                    Ok(cc) => same_partition(cc.labels(), &mirror.connected_components()),
                    Err(_) => false,
                };
                if !ok {
                    failures += 1;
                    eprintln!("trial {trial}: FAILURE at update {}", i + 1);
                }
            }
        }
        println!("trial {trial}: ok ({} updates)", stream.updates.len());
    }

    println!("\n{checks} checks across {trials} trials: {failures} failures");
    println!("(paper §6.3: 0 failures in 5000 trials; guaranteed bound 1/V^c)");
    assert_eq!(failures, 0, "sketch connectivity produced a wrong answer");
}
