//! Out-of-core GraphZeppelin: sketches and gutters on disk.
//!
//! The paper's hybrid streaming model (§4): only polylog RAM, with the
//! `O(V log³V)` sketch state on SSD accessed in blocks. This example builds
//! the on-disk configuration, ingests a dense Kronecker stream, and reports
//! what the I/O counters saw — the measurable analogue of "GraphZeppelin
//! scales to SSD at a 29% cost to ingestion rate".
//!
//! ```sh
//! cargo run --release -p gz-bench --example out_of_core
//! ```

use graph_zeppelin::{GraphZeppelin, GzConfig};
use gz_stream::{Dataset, StreamifyConfig, UpdateKind};
use std::time::Instant;

fn main() {
    let dataset = Dataset::kron(10); // 1024 vertices, ~half of all edges
    let stream = dataset.stream(42, &StreamifyConfig::default());
    println!(
        "dataset {}: {} nodes, {} stream updates",
        dataset.name,
        dataset.num_vertices,
        stream.updates.len()
    );

    let dir = std::env::temp_dir().join(format!("gz_out_of_core_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // File-backed sketches + on-disk gutter tree. Tighten the sketch cache
    // to an eighth of the node groups so the store genuinely pages (the
    // paper's limited-RAM regime): evictions write dirty groups back.
    let mut config = GzConfig::on_disk(dataset.num_vertices, dir.clone());
    if let graph_zeppelin::StoreBackend::Disk { cache_groups, .. } = &mut config.store {
        *cache_groups = (dataset.num_vertices / 8).max(4) as usize;
    }
    let mut gz = GraphZeppelin::new(config).expect("valid config");

    let start = Instant::now();
    for upd in &stream.updates {
        gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
    }
    gz.flush();
    let ingest = start.elapsed();

    let start = Instant::now();
    let cc = gz.connected_components().expect("query");
    let query = start.elapsed();

    println!(
        "\ningest: {:.2?} ({:.2}M updates/s)   query: {:.2?}   components: {}",
        ingest,
        stream.updates.len() as f64 / ingest.as_secs_f64() / 1e6,
        query,
        cc.num_components()
    );

    let store = gz.store_io().expect("disk store counters");
    println!(
        "\nsketch store I/O: {} reads / {} writes, {:.1} MiB total \
         ({:.4} I/Os per stream update)",
        store.reads(),
        store.writes(),
        (store.bytes_read() + store.bytes_written()) as f64 / (1 << 20) as f64,
        store.total_ops() as f64 / stream.updates.len() as f64,
    );
    if let Some(gutter) = gz.gutter_io() {
        println!(
            "gutter tree I/O:  {} reads / {} writes, {:.1} MiB total",
            gutter.reads(),
            gutter.writes(),
            (gutter.bytes_read() + gutter.bytes_written()) as f64 / (1 << 20) as f64,
        );
    }
    println!(
        "\nsketch state: {:.1} MiB on disk vs {:.1} MiB for a bit-matrix of the same graph",
        gz.sketch_bytes() as f64 / (1 << 20) as f64,
        graph_zeppelin::size_model::adjacency_matrix_bytes(dataset.num_vertices) as f64
            / (1 << 20) as f64,
    );
    println!(
        "(at this toy scale the explicit matrix is smaller; the sketches' \
         V·log³V wins beyond V ≈ 2^{:.0} — paper Figure 11)",
        (graph_zeppelin::size_model::crossover_vs_matrix() as f64).log2()
    );

    drop(gz);
    std::fs::remove_dir_all(&dir).ok();
}
