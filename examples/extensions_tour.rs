//! Tour of the sketch extensions the paper names beyond connectivity
//! (§3.1: bipartiteness, edge connectivity, minimum spanning trees; §8:
//! distributed partitioning; plus checkpoint/restore).
//!
//! ```sh
//! cargo run --release -p gz-bench --example extensions_tour
//! ```

use graph_zeppelin::{
    BipartitenessTester, GraphZeppelin, GzConfig, KForestSketcher, MsfSketcher,
    ShardedGraphZeppelin,
};

fn main() {
    let n = 64u64;

    // --- Bipartiteness on a dynamic graph -------------------------------
    let mut bip = BipartitenessTester::new(n, 1).unwrap();
    for i in 0..16u32 {
        bip.insert(i, (i + 1) % 16); // 16-cycle: even, bipartite
    }
    println!("16-cycle bipartite?          {}", bip.query().unwrap().bipartite);
    bip.insert(0, 2); // chord creates a 3-cycle
    println!("...after odd chord (0,2)?    {}", bip.query().unwrap().bipartite);
    bip.delete(0, 2);
    println!("...after deleting the chord? {}", bip.query().unwrap().bipartite);

    // --- k-edge-connectivity certificate --------------------------------
    // (universe sized to the graph: 2-edge-connectivity is a whole-graph
    // property, so isolated spare vertices would make it trivially false)
    let mut kec = KForestSketcher::new(20, 2, 2).unwrap();
    for i in 0..20u32 {
        kec.insert(i, (i + 1) % 20); // a 20-cycle is 2-edge-connected
    }
    println!("\n20-cycle 2-edge-connected?   {}", kec.is_two_edge_connected().unwrap());
    kec.delete(0, 1); // now a path: every edge a bridge
    println!("...after deleting one edge?  {}", kec.is_two_edge_connected().unwrap());
    let cert = kec.certificate().unwrap();
    println!(
        "certificate: {} forests, {} edges total (graph had 19)",
        cert.forests.len(),
        cert.union_edges().len()
    );

    // --- Minimum spanning forest -----------------------------------------
    let mut msf = MsfSketcher::new(n, 4, 3).unwrap();
    // A weighted wheel: rim edges cost 0, spokes cost 3.
    for i in 1..12u32 {
        msf.insert(i, i % 11 + 1, 0);
        msf.insert(0, i, 3);
    }
    let forest = msf.minimum_spanning_forest().unwrap();
    println!(
        "\nwheel MSF: {} edges, total weight {} (one spoke + the rim)",
        forest.edges.len(),
        forest.total_weight
    );

    // --- Sharded ingestion (cluster model) -------------------------------
    // Updates flow through the batching router into four shard pipelines;
    // `examples/multi_process_shards.rs` runs the same coordinator against
    // worker OS processes over the socket transport.
    let mut sharded = ShardedGraphZeppelin::new(n, 4, 4).unwrap();
    let updates: Vec<(u32, u32, bool)> =
        (0..40u32).map(|i| (i % 32, (i * 7 + 1) % 32, false)).filter(|&(a, b, _)| a != b).collect();
    sharded.ingest(updates.iter().copied()).unwrap();
    println!(
        "\nsharded across {} shards: {} components ({} batches shipped)",
        sharded.num_shards(),
        sharded
            .connected_components()
            .unwrap()
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len(),
        sharded.batches_shipped(),
    );

    // --- Checkpoint / restore --------------------------------------------
    let path = std::env::temp_dir().join(format!("gz_tour_{}.gzc", std::process::id()));
    let mut gz = GraphZeppelin::new(GzConfig::in_ram(n)).unwrap();
    gz.edge_update(1, 2);
    gz.edge_update(2, 3);
    gz.save_checkpoint(&path).unwrap();
    let mut restored = GraphZeppelin::restore(&path).unwrap();
    restored.edge_update(3, 4); // continue streaming after restart
    let cc = restored.connected_components().unwrap();
    println!("\ncheckpoint restored: vertices 1 and 4 connected? {}", cc.same_component(1, 4));
    std::fs::remove_file(&path).ok();
}
